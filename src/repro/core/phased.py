"""Shared phase bookkeeping for grouped batch dispatch of adaptive policies.

The LP-round family (``sem``, ``adapt``, ``layered``, and SUU-C's segment
runs) shares one execution skeleton: solve ``LP1(remaining, target)``,
round it, lay the result out as a :class:`~repro.schedule.oblivious.
FiniteObliviousSchedule`, and walk that schedule row by row until it is
exhausted or the covered jobs complete.  Under grouped dispatch
(:class:`~repro.schedule.base.PhasedPolicy`) that skeleton splits into two
shareable pieces:

* :class:`RoundScheduleCache` — the *expensive* piece, shared across all
  lock-stepped trials of one batch.  Round schedules are memoized by
  ``(target, remaining-set)``; the LP solve / rounding / layout pipeline is
  deterministic (no RNG anywhere in it), so every trial entering a round
  with the same survivor set replays one solve.  Each distinct schedule
  gets a small-integer id, which is what phase keys embed: two trials with
  the same ``(schedule id, step)`` are provably about to receive the same
  assignment row.
* :class:`SemCursor` — the *cheap* per-trial piece: a faithful replica of
  :class:`~repro.core.suu_i_sem.SUUISemPolicy`'s control state (mode,
  round index, schedule id, step cursor).  :func:`sem_phase_key` advances
  a cursor through exactly the scalar policy's control flow (doubling
  rounds, the serial and repeat-last fallbacks) and returns the trial's
  phase key; :func:`sem_row_for_key` maps a key to its assignment row;
  :func:`sem_advance` bumps the step cursor after the row executes.

Bit-identity rests on the determinism of the solve pipeline: a memoized
schedule is byte-for-byte the schedule the scalar policy would have built
for the same (target, survivor set), so cursor-driven trials reproduce the
scalar assignment sequence exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from repro.core.lp1 import cached_capped_logmass, solve_lp1
from repro.core.rounding import round_assignment
from repro.lp.stats import LP_STATS
from repro.schedule.base import IDLE, SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule

__all__ = [
    "ProcessSolveCache",
    "shared_solve_cache",
    "install_solve_cache",
    "clear_solve_cache",
    "solve_cache_stats",
    "resolve_lp_reuse",
    "active_lp_reuse",
    "lp_reuse_eps",
    "lp_reuse_context",
    "RoundScheduleCache",
    "ReplicaGroupedDispatch",
    "SemCursor",
    "sem_phase_key",
    "sem_row_for_key",
    "sem_advance",
]

#: Phase key of a trial whose covered jobs have all completed (idle row).
IDLE_KEY = ("idle",)

# ---------------------------------------------------------------------------
# Survivor-set reuse mode ("collapse the LP wall").
#
# ``exact`` (the default) keeps today's behavior bit for bit: every distinct
# (target, survivor set) runs its own LP1 solve pipeline, memoized exactly.
# ``subset`` additionally allows a new survivor set S' that is a *subset* of
# an already-solved set S (a per-trial predecessor, a coalesced boundary
# union, or the canonical full-job-set anchor) to reuse S's rounded round
# schedule restricted to S''s columns and compacted.  Capped-mass coverage
# is then *exact*: every job of S' keeps its full multiset of (machine,
# step-count) assignments from S, so each still receives >= target capped
# mass, bit for bit.  What reuse can cost is schedule *length* — the
# donor's placement need not balance S''s surviving steps — and eps bounds
# exactly that: a restriction is accepted only when its compacted length is
# within ``(1 + eps)`` of a perfectly balanced repack of the same steps.
# Only schedule length (and hence makespan, statistically) can differ from
# a fresh solve; gate-failing restrictions fall back to their own solves.

#: Recognized ``lp_reuse`` modes.
LP_REUSE_MODES = ("exact", "subset")

#: Default relative length overhead tolerated by a derived round schedule
#: (vs a perfectly balanced repack of its surviving steps).
DEFAULT_LP_REUSE_EPS = 0.25

#: lp_reuse scope installed by :func:`lp_reuse_context` — thread-local,
#: so trial shards (repro.sim.batch, kernel_threads > 1) running
#: concurrent batches in one process never see each other's mode.
_lp_reuse_tls = threading.local()


def resolve_lp_reuse(mode: str | None = None) -> str:
    """Validate ``mode``, consulting ``REPRO_LP_REUSE`` when None.

    Delegates to :func:`repro.api.config.resolve_lp_reuse` — the single
    config-resolution chain shared by every knob (this module keeps the
    name for its long-standing callers).
    """
    # Deferred: repro.api.config is the one env-reading module and lives
    # above this layer (importing it pulls the whole api package).
    from repro.api.config import resolve_lp_reuse as _resolve

    return _resolve(mode)


def active_lp_reuse() -> str:
    """The lp_reuse mode in effect (context override, else environment)."""
    active = getattr(_lp_reuse_tls, "mode", None)
    if active is not None:
        return active
    return resolve_lp_reuse()


def lp_reuse_eps() -> float:
    """Subset-reuse length-overhead tolerance (``REPRO_LP_REUSE_EPS``).

    Delegates to :func:`repro.api.config.lp_reuse_eps`.
    """
    from repro.api.config import lp_reuse_eps as _resolve

    return _resolve()


@contextmanager
def lp_reuse_context(mode: str | None):
    """Scope an lp_reuse mode over a batch run.

    The scope is genuinely thread-local: each trial shard's recursive
    batch run enters its own context on its own thread, so concurrent
    shards never clobber (or prematurely restore) each other's mode.
    """
    previous = getattr(_lp_reuse_tls, "mode", None)
    _lp_reuse_tls.mode = resolve_lp_reuse(mode)
    try:
        yield
    finally:
        _lp_reuse_tls.mode = previous


class ProcessSolveCache:
    """Process-wide memo for deterministic solve pipelines.

    :class:`RoundScheduleCache` (and SUU-C's chain-plan preparation) are
    deterministic functions of ``(instance, configuration)``; within one
    batch they are already memoized, but every batch — and, under the
    process backend, every worker *chunk* — used to start cold and
    re-solve the shared round-1 LP.  This cache outlives batches: entries
    are keyed by ``(kind, instance digest, *configuration)``, so a grid
    sweep's cells (and all chunks a worker handles) share one solve per
    distinct key.

    Sharing never changes results: the pipelines behind every entry are
    RNG-free, so a cached value is byte-for-byte what a fresh solve would
    produce — v1 bit-identity is preserved.  Two eviction axes keep
    long-lived workers (grid sweeps, the request server's warm pools)
    from growing unboundedly:

    * **LRU entry eviction** — a lookup refreshes its entry, so the
      ``max_entries`` bound drops the least-recently-*used* schedule, not
      merely the oldest-inserted one (round-1 LPs shared by every batch
      stay resident no matter how many one-off survivor sets stream by).
    * **Per-instance-digest scoping** — every key carries its instance
      digest at position 1; the cache groups entries by digest and, past
      ``max_instances`` distinct instances, drops the least-recently-used
      instance's entries wholesale.  A server that has answered requests
      for thousands of distinct instances keeps only the recent working
      set, and :meth:`evict_instance` lets callers drop one instance
      eagerly.

    The cache is per *process*.  Worker pools install (size) it through
    their initializer (:func:`install_solve_cache`); in-process use hits
    the module-level instance directly.  ``REPRO_SOLVE_CACHE=0`` disables
    it entirely.
    """

    def __init__(self, max_entries: int = 512, max_instances: int = 32):
        self.max_entries = int(max_entries)
        self.max_instances = int(max_instances)
        self._entries: OrderedDict = OrderedDict()
        #: digest -> set of live keys, LRU-ordered by last touch.
        self._digests: OrderedDict = OrderedDict()
        #: Guards the dict/LRU bookkeeping: trial shards (kernel_threads
        #: > 1) hit this process-wide cache from concurrent threads.
        #: Misses compute *outside* the lock — a rare duplicated solve is
        #: benign (the pipelines are deterministic), serializing every
        #: shard on one LP solve is not.
        self._mu = threading.RLock()
        self.solves = 0  # misses that ran a real solve pipeline
        self.hits = 0

    @property
    def enabled(self) -> bool:
        """False when disabled via ``REPRO_SOLVE_CACHE=0`` or size 0."""
        from repro.api.config import solve_cache_enabled

        return self.max_entries > 0 and solve_cache_enabled()

    @staticmethod
    def _digest_of(key):
        # Every caller keys entries as (kind, instance digest, *config).
        return key[1] if isinstance(key, tuple) and len(key) > 1 else None

    def _touch(self, key) -> None:
        """Refresh LRU position of ``key`` and of its instance digest."""
        self._entries.move_to_end(key)
        digest = self._digest_of(key)
        if digest in self._digests:
            self._digests.move_to_end(digest)

    def _forget(self, key) -> None:
        """Remove ``key``'s digest bookkeeping (entry already popped)."""
        digest = self._digest_of(key)
        keys = self._digests.get(digest)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._digests[digest]

    def peek(self, key):
        """The cached value for ``key`` (refreshing LRU), or None.

        Unlike :meth:`lookup` a miss is free: no compute, no counter.  The
        reuse/coalescing machinery peeks to decide *whether* a solve is
        needed before committing to one.
        """
        if not self.enabled:
            return None
        with self._mu:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
                self._touch(key)
            return value

    def lookup(self, key, compute):
        """``compute()`` memoized under ``key`` (straight call if disabled)."""
        if not self.enabled:
            self.solves += 1
            return compute()
        with self._mu:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
                self._touch(key)
                return value
        value = compute()
        with self._mu:
            self.solves += 1
            self._entries[key] = value
            digest = self._digest_of(key)
            if digest is not None:
                self._digests.setdefault(digest, set()).add(key)
                self._digests.move_to_end(digest)
                while len(self._digests) > max(1, self.max_instances):
                    self.evict_instance(next(iter(self._digests)))
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                self._forget(old_key)
        return value

    def evict_instance(self, digest) -> int:
        """Drop every entry scoped to ``digest``; returns how many."""
        with self._mu:
            keys = self._digests.pop(digest, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
            return len(keys)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._mu:
            self._entries.clear()
            self._digests.clear()
            self.solves = 0
            self.hits = 0


_SHARED_SOLVE_CACHE = ProcessSolveCache()


def shared_solve_cache() -> ProcessSolveCache:
    """This process's cross-batch solve cache."""
    return _SHARED_SOLVE_CACHE


def install_solve_cache(max_entries: int = 512, max_instances: int | None = None) -> None:
    """Size the process-wide solve cache (worker-pool initializer target).

    Module-level so ``ProcessPoolExecutor(initializer=...)`` can ship it
    to ``spawn``-ed workers; each worker then keeps one warm cache across
    every chunk, grid cell, and server request it handles.
    ``max_instances`` bounds how many distinct instance digests stay
    resident (``None`` keeps the current bound).
    """
    _SHARED_SOLVE_CACHE.max_entries = int(max_entries)
    if max_instances is not None:
        _SHARED_SOLVE_CACHE.max_instances = int(max_instances)


def clear_solve_cache() -> None:
    """Reset the process-wide solve cache (test isolation)."""
    _SHARED_SOLVE_CACHE.clear()


def solve_cache_stats() -> dict:
    """Counters of the process-wide cache: entries / instances / solves / hits.

    Module-level (and picklable-return) so worker pools can sample a
    worker's cache through ``pool.submit(solve_cache_stats)`` — how the
    request server's ``/healthz`` surfaces warm-worker reuse.  The
    process-wide LP-wall counters (:mod:`repro.lp.stats`) ride along so
    the served path reports real HiGHS solves, assembly time, subset-reuse
    hits, and coalesced batches too.
    """
    stats = {
        "entries": len(_SHARED_SOLVE_CACHE._entries),
        "instances": len(_SHARED_SOLVE_CACHE._digests),
        "solves": _SHARED_SOLVE_CACHE.solves,
        "hits": _SHARED_SOLVE_CACHE.hits,
    }
    stats.update(LP_STATS.snapshot())
    return stats


class RoundScheduleCache:
    """Memoized LP1-round schedules, shared across lock-stepped trials.

    One cache serves one batch execution of one policy (phase keys embed
    its schedule ids, which are only meaningful within it).  Local misses
    consult the cross-batch :func:`shared_solve_cache` before solving, so
    grid sweeps and process-backend worker chunks pay the shared round-1
    LP once per (instance, target, survivor set) per process rather than
    once per batch.

    Attributes
    ----------
    solves:
        Number of *local* cache misses — lookups this batch had not seen
        before (some may be served by the process-wide cache without an
        actual LP solve; see :func:`solve_cache_stats` for that split).
        The scalar loop would have paid one solve per (trial, round); the
        difference is the dominant part of the grouped-dispatch speedup.
    hits:
        Number of lookups served from this batch's own table.
    """

    #: Donor survivor sets kept per target for subset reuse, most recent last.
    MAX_DONORS_PER_TARGET = 64
    #: Thread-pool width for coalesced boundary solves (HiGHS releases the
    #: GIL inside scipy, so a small pool overlaps real solver work).
    COALESCE_WORKERS = 4

    def __init__(self, instance, scale: int):
        self.instance = instance
        self.scale = int(scale)
        self.schedules: list[FiniteObliviousSchedule] = []
        self._memo: dict = {}
        self.solves = 0
        self.hits = 0
        self.reuse_hits = 0
        self.coalesced_batches = 0
        self.coalesced_solves = 0
        #: target -> list of (sorted survivor array, schedule) donors.
        self._donors: dict[float, list] = {}

    def _solve(self, target: float, jobs: np.ndarray) -> FiniteObliviousSchedule:
        relaxation = solve_lp1(self.instance, jobs=jobs, target=target)
        assignment = round_assignment(relaxation, scale=self.scale)
        return FiniteObliviousSchedule.from_assignment(assignment)

    def _shared_key(self, key):
        return ("lp1-round", self.instance.digest(), self.scale) + key

    def _sub_key(self, key, eps: float):
        # Distinct prefix: derived schedules must never serve exact-mode
        # lookups (exact mode stays bit-identical to a cold cache).
        return ("lp1-round-sub", self.instance.digest(), self.scale, eps) + key

    # -- subset reuse ---------------------------------------------------
    def _register_donor(self, target: float, jobs: np.ndarray,
                        schedule: FiniteObliviousSchedule) -> None:
        pool = self._donors.setdefault(float(target), [])
        pool.append((jobs, schedule))
        if len(pool) > self.MAX_DONORS_PER_TARGET:
            del pool[0]

    def _derive_from_donors(self, target: float, jobs: np.ndarray, eps: float):
        """A gate-passing derived schedule for ``jobs``, or None.

        Existing superset donors are tried first (no solve at all), most
        recent first; if none matches or passes the quality gate, the
        *canonical* anchor — the full instance job set, a superset of
        every survivor set that needs exactly one shared solve per
        target, ever — is solved and tried.
        """
        pool = self._donors.get(float(target), [])
        for donor_jobs, schedule in reversed(pool):
            pos = np.searchsorted(donor_jobs, jobs)
            if (pos < donor_jobs.size).all() and (donor_jobs[pos] == jobs).all():
                derived = self._restrict(schedule, jobs, target, eps)
                if derived is not None:
                    return derived
        full = np.arange(self.instance.n_jobs, dtype=np.int64)
        if jobs.size == full.size or any(
            donor_jobs.size == full.size for donor_jobs, _ in pool
        ):
            # The full set is the exact key itself, or the canonical anchor
            # is already registered (and was tried, and failed, above).
            return None
        ukey = (float(target), full.tobytes())
        anchor = shared_solve_cache().lookup(
            self._shared_key(ukey), lambda: self._solve(target, full)
        )
        self._register_donor(target, full, anchor)
        self.coalesced_batches += 1
        LP_STATS.add("coalesced_batches")
        return self._restrict(anchor, jobs, target, eps)

    def _restrict(self, schedule: FiniteObliviousSchedule, jobs: np.ndarray,
                  target: float, eps: float):
        """The donor schedule restricted to ``jobs``, rebalanced and gated.

        The restriction keeps, for every surviving job, its donor step
        counts per machine — so each job still receives >= ``target``
        capped mass — and drops steps the donor spent on departed jobs.
        That alone is imbalanced: a fresh LP1 *minimizes* the max machine
        load, while a restriction inherits placement balanced for the
        donor's full set.  So steps are then greedily relocated from
        over- to under-loaded machines, choosing at each move the job
        whose capped-logmass delta between the two machines is largest
        (least mass damage first) and never letting any job's mass drop
        below ``target``.  The rebalanced length approaches the perfectly
        balanced repack a fresh solve would produce.

        The quality gate bounds the only real cost of reuse: the result
        is returned only when the final length is within ``(1 + eps)`` of
        the ceil-balanced repack of the same steps (and every requested
        job actually appears — vacuously true for donors built from LP1
        supersets, where mass >= target forces at least one step).
        Returns None when the gate fails.
        """
        m = schedule.table.shape[1]
        keep = np.isin(schedule.table, jobs)
        counts = np.zeros((m, jobs.size), dtype=np.int64)
        for i in range(m):
            vals = schedule.table[keep[:, i], i]
            np.add.at(counts[i], np.searchsorted(jobs, vals), 1)
        if (counts.sum(axis=0) == 0).any():
            return None
        ell = cached_capped_logmass(self.instance, target)[:, jobs]
        loads = counts.sum(axis=1)
        ideal = -(-int(loads.sum()) // m)  # ceil balance
        slack = (counts * ell).sum(axis=0) - target
        while True:
            a = int(np.argmax(loads))
            b = int(np.argmin(loads))
            if loads[a] <= ideal or loads[b] >= ideal:
                break
            delta = ell[b] - ell[a]
            movable = (counts[a] > 0) & (slack + delta >= 0.0)
            if not movable.any():
                break
            j = int(np.argmax(np.where(movable, delta, -np.inf)))
            counts[a, j] -= 1
            counts[b, j] += 1
            loads[a] -= 1
            loads[b] += 1
            slack[j] += delta[j]
        length = int(loads.max())
        if length > (1.0 + eps) * ideal:
            return None
        out = np.full((length, m), IDLE, dtype=np.int64)
        for i in range(m):
            col = np.repeat(jobs, counts[i])
            out[: col.size, i] = col
        return FiniteObliviousSchedule(out)

    def _obtain(self, key, count: bool = True) -> FiniteObliviousSchedule:
        """The schedule for ``key = (target, jobs_bytes)`` honoring the
        active lp_reuse mode (shared-cache first, then derivation from a
        donor or a grown union anchor, then a fresh solve).

        ``count=False`` suppresses the reuse-hit counters: ``ensure_many``
        warms keys through this method, and the follow-up ``schedule_id``
        call will count the (single) reuse when it peeks the warmed entry.
        """
        target = key[0]
        jobs = np.frombuffer(key[1], dtype=np.int64)
        shared = shared_solve_cache()
        if active_lp_reuse() == "subset":
            schedule = shared.peek(self._shared_key(key))
            if schedule is not None:
                self._register_donor(target, jobs, schedule)
                return schedule
            eps = lp_reuse_eps()
            sub_key = self._sub_key(key, eps)
            schedule = shared.peek(sub_key)
            if schedule is None:
                derived = self._derive_from_donors(target, jobs, eps)
                if derived is not None:
                    schedule = shared.lookup(sub_key, lambda: derived)
            if schedule is not None:
                if count:
                    self.reuse_hits += 1
                    LP_STATS.add("reuse_hits")
                return schedule
        schedule = shared.lookup(
            self._shared_key(key), lambda: self._solve(target, jobs)
        )
        if active_lp_reuse() == "subset":
            self._register_donor(target, jobs, schedule)
        return schedule

    def schedule_id(self, target: float, jobs: np.ndarray) -> int:
        """Schedule id for ``LP1(jobs, target)`` rounded at ``self.scale``.

        ``jobs`` is the sorted array of still-remaining covered jobs (what
        the scalar policies pass to ``solve_lp1``).
        """
        jobs = np.ascontiguousarray(jobs, dtype=np.int64)
        key = (float(target), jobs.tobytes())
        sid = self._memo.get(key)
        if sid is None:
            schedule = self._obtain(key)
            sid = len(self.schedules)
            self.schedules.append(schedule)
            self._memo[key] = sid
            self.solves += 1
        else:
            self.hits += 1
        return sid

    # -- coalesced boundary solves --------------------------------------
    def ensure_many(self, requests) -> None:
        """Warm the caches for several upcoming ``(target, jobs)`` lookups.

        Called by ``begin_step`` pre-passes when a lock-step boundary is
        about to request multiple distinct survivor-set schedules.  Purely
        a cache-warming step — the subsequent serial :meth:`schedule_id`
        calls assign ids and produce identical results whether or not this
        ran (the solve pipeline is deterministic), so correctness and v1
        bit-identity are untouched.

        Misses are handled by mode:

        * ``subset`` — per target, the *union* of the missing survivor
          sets is solved once and registered as a donor (its composition
          is much closer to this round's sets than the canonical full-set
          anchor, so restrictions from it pass the quality gate more
          often); every miss then warms through the donor machinery, with
          gate failures falling back to their own solves.
        * ``exact`` — misses at one boundary solve concurrently on a
          small thread pool (scipy's HiGHS releases the GIL).  The solves
          are the same deterministic pipelines, merely overlapped.
        """
        pending: dict = {}
        for target, jobs in requests:
            jobs = np.ascontiguousarray(jobs, dtype=np.int64)
            key = (float(target), jobs.tobytes())
            if key not in self._memo and key not in pending:
                pending[key] = jobs
        if not pending:
            return
        shared = shared_solve_cache()
        subset = active_lp_reuse() == "subset"
        eps = lp_reuse_eps() if subset else 0.0

        misses: dict = {}
        for key, jobs in pending.items():
            hit = shared.peek(self._shared_key(key))
            if hit is not None:
                if subset:
                    self._register_donor(key[0], jobs, hit)
                continue
            if subset and shared.peek(self._sub_key(key, eps)) is not None:
                continue
            misses[key] = jobs
        if not misses:
            return

        if subset:
            by_target: dict = {}
            for key, jobs in misses.items():
                by_target.setdefault(key[0], []).append((key, jobs))
            for target, group in by_target.items():
                if len(group) < 2:
                    continue
                # One union-anchor solve per boundary group: a donor whose
                # composition is much closer to this round's survivor sets
                # than the canonical full-set anchor, so restrictions from
                # it pass the quality gate more often.
                union = group[0][1]
                for _, jobs in group[1:]:
                    union = np.union1d(union, jobs)
                union = np.ascontiguousarray(union, dtype=np.int64)
                ukey = (target, union.tobytes())
                schedule = shared.lookup(
                    self._shared_key(ukey), lambda u=union, t=target: self._solve(t, u)
                )
                self._register_donor(target, union, schedule)
                self.coalesced_batches += 1
                self.coalesced_solves += len(group)
                LP_STATS.add("coalesced_batches")
                LP_STATS.add("coalesced_solves", len(group))
            # Every miss then warms serially through the donor machinery;
            # gate-failing restrictions fall back to their own solves.
            for key in misses:
                self._obtain(key, count=False)
            return

        solo = misses
        if len(solo) > 1:
            keys = list(solo)
            with ThreadPoolExecutor(max_workers=self.COALESCE_WORKERS) as pool:
                solved = list(
                    pool.map(lambda k: self._solve(k[0], solo[k]), keys)
                )
            for key, schedule in zip(keys, solved):
                shared.lookup(self._shared_key(key), lambda s=schedule: s)
            self.coalesced_batches += 1
            self.coalesced_solves += len(keys)
            LP_STATS.add("coalesced_batches")
            LP_STATS.add("coalesced_solves", len(keys))

    def schedule(self, sid: int) -> FiniteObliviousSchedule:
        """The schedule registered under ``sid``."""
        return self.schedules[sid]


class ReplicaGroupedDispatch:
    """``phase_key``/``assign_group`` via per-trial scalar replicas.

    The degenerate end of the phased protocol, for policies whose
    assignment rows depend on per-trial randomness (SUU-C's chain delays):
    every trial keeps a full scalar policy replica, phase keys are the
    trial indices, and the batch win comes from the shared ``start_phased``
    preparation plus the vectorized engine — not from row sharing.

    A policy mixes this in and calls :meth:`_init_replica_dispatch` with
    its started replicas at the end of ``start_phased``.
    """

    phase_grouping = "replica"

    def _init_replica_dispatch(self, replicas) -> None:
        self._replicas = list(replicas)
        self._pending_rows = [None] * len(self._replicas)

    def phase_key(self, trial: int, state):
        view = SimulationState(
            t=state.t,
            remaining=state.remaining[trial],
            eligible=state.eligible[trial],
            mass_accrued=state.mass_accrued[trial],
        )
        self._pending_rows[trial] = self._replicas[trial].assign(view)
        return trial

    def assign_group(self, state, trials) -> np.ndarray:
        return self._pending_rows[trials[0]]


class SemCursor:
    """Per-trial replica of SUU-I-SEM's round state.

    Mirrors the mutable fields of a scalar
    :class:`~repro.core.suu_i_sem.SUUISemPolicy` execution — mode
    (``rounds`` / ``serial`` / ``repeat``), round counter, and the cursor
    into the current round's schedule — with the schedule itself replaced
    by an id into a shared :class:`RoundScheduleCache`.

    Parameters
    ----------
    universe_mask:
        Boolean mask over all jobs: the cursor's job universe (SEM's
        ``jobs`` argument; all jobs when None there).
    n_rounds:
        The round budget ``K`` after which the fallback modes engage.
    fallback:
        Mirror of the scalar policy's ``fallback`` flag.
    """

    __slots__ = ("universe_mask", "universe_size", "n_rounds", "fallback",
                 "mode", "round", "sid", "step")

    def __init__(self, universe_mask: np.ndarray, n_rounds: int, fallback: bool):
        self.universe_mask = universe_mask
        self.universe_size = int(universe_mask.sum())
        self.n_rounds = int(n_rounds)
        self.fallback = bool(fallback)
        self.mode = "rounds"  # rounds | serial | repeat
        self.round = 0
        self.sid: int | None = None
        self.step = 0


def _begin_round(cursor: SemCursor, cache: RoundScheduleCache,
                 remaining_jobs: np.ndarray) -> None:
    """Advance to the next doubling round (scalar ``_begin_round``)."""
    cursor.round += 1
    target = 2.0 ** (cursor.round - 2)  # round 1 -> 1/2, doubling after
    cursor.sid = cache.schedule_id(target, remaining_jobs)
    cursor.step = 0


def sem_phase_key(cursor: SemCursor, cache: RoundScheduleCache,
                  remaining_row: np.ndarray, n_machines: int):
    """The trial's phase key, advancing round/mode state exactly like the
    scalar policy's ``assign`` would.

    ``remaining_row`` is the trial's boolean remaining mask (one row of the
    batch state).  May solve a new round's LP through ``cache`` (memoized);
    must be called once per live trial per step, like the protocol says.
    """
    if cursor.mode == "serial":
        remaining = np.flatnonzero(remaining_row & cursor.universe_mask)
        if remaining.size == 0:
            return IDLE_KEY
        return ("serial", int(remaining[0]))

    if cursor.mode == "repeat":
        length = cache.schedule(cursor.sid).length
        return ("row", cursor.sid, cursor.step % length)

    # Round mode: advance to the next round when the current schedule is
    # exhausted (or not yet built).
    while cursor.sid is None or cursor.step >= cache.schedule(cursor.sid).length:
        remaining = np.flatnonzero(remaining_row & cursor.universe_mask)
        if remaining.size == 0:
            return IDLE_KEY
        if cursor.fallback and cursor.round >= cursor.n_rounds:
            if cursor.universe_size <= n_machines:
                cursor.mode = "serial"
                return sem_phase_key(cursor, cache, remaining_row, n_machines)
            # m < n: repeat the Kth round's schedule forever.
            cursor.mode = "repeat"
            cursor.step = 0
            if cursor.sid is None or cache.schedule(cursor.sid).length == 0:
                _begin_round(cursor, cache, remaining)  # degenerate guard
                cursor.step = 0
            return sem_phase_key(cursor, cache, remaining_row, n_machines)
        _begin_round(cursor, cache, remaining)
    return ("row", cursor.sid, cursor.step)


def sem_row_for_key(key, cache: RoundScheduleCache, idle_row: np.ndarray,
                    scratch_row: np.ndarray) -> np.ndarray:
    """The shared ``(m,)`` assignment row for a phase key.

    ``idle_row`` is a reusable all-IDLE row; ``scratch_row`` a reusable
    buffer for serial-mode rows (all machines on one job).
    """
    tag = key[0]
    if tag == "idle":
        return idle_row
    if tag == "serial":
        scratch_row.fill(key[1])
        return scratch_row
    return cache.schedule(key[1]).assignment_at(key[2])


def sem_advance(cursor: SemCursor, key) -> None:
    """Post-dispatch cursor bump (the scalar ``self._step += 1``)."""
    if key[0] == "row":
        cursor.step += 1
