"""Array-based chain cursors: batch-native SUU-C execution (discipline v2).

Under RNG discipline v1, SUU-C and SUU-T run grouped batch dispatch with
*per-trial scalar replicas* (:class:`~repro.core.phased.
ReplicaGroupedDispatch`): bit-identity with the serial path forces each
trial to replay its own ``_ChainState`` objects, so a batch of ``B``
trials pays ``B`` full Python policy steps per timestep and — the real
cost — ``B`` independent LP1 solves for every segment SEM run.  That is
why BENCH_3 measured ``suu-c`` at ~1x while ``sem`` hit 25x.

Discipline v2 drops the bit-identity constraint (statistical equivalence
only), which unlocks the batch-native layout this module implements:

* **Chain cursors as matrices.**  Per-trial ``_ChainState`` objects become
  ``(n_trials, n_chains)`` int arrays — ``chain_pos`` (current item),
  ``tau`` (supersteps into the current block), ``delay_remaining`` (pause
  countdowns), plus per-trial superstep/phase vectors.  Chain start delays
  arrive as one ``(n_trials, n_chains)`` matrix drawn from the batch's
  :class:`~repro.util.rng.BatchStreams`.
* **Signature-grouped boundary stepping.**  Superstep boundaries — the
  chain-cursor advance after an expansion drains, and the preamble that
  starts newly-due chains and recovers expired pauses before the next
  build — run as whole-batch numpy transitions over ``(trials, chains)``
  matrices instead of a per-trial Python walk.  The resulting superstep is
  then *encoded*: each trial's full ``(chain → block item, tau)``
  signature becomes one small int vector whose bytes key a lazily-built
  transition memo, so every distinct signature is compiled (flattened into
  shared expansion rows, congestion measured, preludes laid out) exactly
  once and scattered back to all trials that reached it — across trials
  *and* timesteps.
* **Solo-row preludes.**  Plans built with ``unit > 1`` (the
  non-polynomial-``t_LP2`` rounding trick of Section 4) re-insert the
  rounded-away steps as solo prelude rows whenever a block is entered or
  retried.  A block is entering exactly when its ``tau`` is 0, so prelude
  rows are a pure function of the signature: they are compiled into the
  signature's row list, ahead of the expansion, in chain order — exactly
  the scalar policy's solo-queue emission order.
* **Inner cursors for every registered subroutine.**  Segment-boundary
  long-job runs are array cursors for all three ``inner`` options:
  ``"sem"`` replays SUU-I-SEM's doubling rounds through lightweight
  per-trial cursors over one shared :class:`~repro.core.phased.
  RoundScheduleCache` (one LP solve per distinct (target, survivor set));
  ``"obl"`` solves ``LP1(jobs, 1/2)`` once per distinct pending set and
  repeats it; ``"repeat"`` repeats the plan's rounded LP2 columns with no
  new solve at all (:func:`long_repeat_schedule`, shared with the scalar
  policy for byte-identical layouts).

The execution semantics replicate the scalar :class:`~repro.core.suu_c.
SUUCPolicy` transition for transition — same superstep builds, same solo
preludes, same pause registration segments, same fallback triggers, same
inner-subroutine control flow — so that given equal delays and equal
thresholds, array cursors and object cursors produce *identical*
executions (the test suite checks exactly this), and under fresh v2
randomness the makespan distribution matches v1's.  No configuration
falls back to per-trial replicas anymore: preludes, ``inner="obl"`` and
``inner="repeat"`` all run on this path.
"""

from __future__ import annotations

import numpy as np

from repro.core.phased import RoundScheduleCache
from repro.core.suu_i_sem import paper_round_count
from repro.errors import ReproError
from repro.kernels import _stepimpl, active_backend
from repro.schedule.base import IDLE, IntegralAssignment
from repro.schedule.oblivious import FiniteObliviousSchedule
from repro.schedule.pseudo import Pause

__all__ = ["ChainCursorBatch", "long_repeat_schedule", "prelude_rows"]

# Per-trial phase codes.
_SUPER = 0
_SEM = 1
_FALLBACK = 2

# Item-kind codes in the flattened chain-program tables.  The kernel
# backends (repro.kernels) hard-code the same values in their fused
# chain transitions, so a drift here would silently corrupt cursors.
_KIND_BLOCK = 0
_KIND_PAUSE = 1
_KIND_END = 2
assert (_KIND_BLOCK, _KIND_PAUSE, _KIND_END) == (
    _stepimpl.KIND_BLOCK,
    _stepimpl.KIND_PAUSE,
    _stepimpl.KIND_END,
)


def long_repeat_schedule(plan, jobs, n_machines: int, n_jobs: int):
    """The ``inner="repeat"`` segment schedule for one pending long-job set.

    Lays the plan's rounded LP2 columns for ``jobs`` (plan-local ids) out
    machine by machine — the exact
    :meth:`~repro.schedule.oblivious.FiniteObliviousSchedule.
    from_assignment` layout — for the caller to repeat until the jobs
    complete.  No LP is solved: this is the Lin–Rajaraman-style "repeat
    the assignment you already have" inner subroutine.  Shared by the
    scalar policy and the array cursors so both execute byte-identical
    schedules.
    """
    steps = dict(plan.long_steps)
    x = np.zeros((n_machines, n_jobs), dtype=np.int64)
    for j in jobs:
        j = int(j)
        for i, cnt in steps.get(j, ()):
            x[i, j] = cnt
    return FiniteObliviousSchedule.from_assignment(
        IntegralAssignment(x=x, jobs=tuple(int(j) for j in jobs), target=0.0)
    )


def prelude_rows(block, job: int, n_machines: int) -> list[np.ndarray]:
    """The solo rows re-inserted when ``block`` is entered or retried.

    Row ``r`` runs ``job`` on every machine whose rounded-away remainder
    exceeds ``r``, idling the rest — one real timestep per row.  Shared by
    the scalar policy's solo queue and the array cursors' signature
    compiler so both emit byte-identical rows (``job`` is already in the
    caller's id space: plan-local for the scalar path, engine-global for
    the cursors).
    """
    rows = []
    for r in range(block.prelude_length):
        row = np.full(n_machines, IDLE, dtype=np.int64)
        for i, cnt in block.prelude:
            if cnt > r:
                row[i] = job
        rows.append(row)
    return rows


class _SegmentSemCursor:
    """One trial's cursor through a segment SUU-I-SEM run.

    A faithful replica of :class:`~repro.core.suu_i_sem.SUUISemPolicy`'s
    control state (doubling rounds, serial/repeat-last fallbacks) over the
    long jobs of one segment, with schedules shared through the batch's
    :class:`RoundScheduleCache`.  ``jobs_local`` are ids in the cache's
    (sub-)instance — what LP1 is solved on — and ``jobs_global`` are the
    corresponding engine ids; both ascending, index-aligned.
    """

    __slots__ = (
        "jobs_global", "jobs_local", "universe_size", "n_rounds",
        "mode", "round", "sid", "step",
    )

    def __init__(self, jobs_global, jobs_local, n_machines):
        self.jobs_global = jobs_global
        self.jobs_local = jobs_local
        self.universe_size = int(jobs_local.size)
        self.n_rounds = paper_round_count(self.universe_size, n_machines)
        self.mode = "rounds"  # rounds | serial | repeat
        self.round = 0
        self.sid: int | None = None
        self.step = 0


class _RepeatCursor:
    """One trial's cursor through an ``inner="obl"``/``"repeat"`` run.

    Both subroutines repeat one fixed finite schedule until the segment's
    long jobs complete; the only difference is where the schedule comes
    from (``"sem-row"``: an ``LP1(jobs, 1/2)`` solve in the shared round
    cache; ``"rep-row"``: the plan's LP2 columns, registered locally).
    """

    __slots__ = ("tag", "sid", "length", "step")

    def __init__(self, tag: str, sid: int, length: int):
        self.tag = tag
        self.sid = sid
        self.length = length
        self.step = 0


class ChainCursorBatch:
    """Array-based cursors driving ``n_trials`` lock-stepped SUU-C runs.

    One instance serves one batch execution of one chain plan (for SUU-T,
    one per forest block).  The owning policy calls :meth:`prepare_step`
    once per engine step (from its ``begin_step`` hook) with the trials it
    is driving; :meth:`key_of` then returns each trial's precomputed phase
    key and :meth:`dispatch` maps a key to its shared assignment row.

    Parameters
    ----------
    plan:
        The shared, trial-independent ``_ChainPlan`` (preludes allowed:
        ``unit > 1`` plans compile their solo rows into the signatures).
    instance:
        The (sub-)instance the plan was prepared on — LP1 segment solves
        run against it.
    delays:
        ``(n_trials, n_chains)`` chain start delays (already scaled by the
        plan's unit).
    n_machines:
        Engine machine count (equals the sub-instance's for SUU-T blocks).
    job_map:
        Maps the plan's job ids to engine job ids (identity for SUU-C;
        the block's global ids for SUU-T).
    n_engine_jobs:
        Width of the engine's job axis (the *global* job count — larger
        than the plan's for SUU-T blocks).
    scale:
        LP1 rounding scale for segment SEM runs.
    inner:
        Segment subroutine for long jobs: ``"sem"``, ``"obl"`` or
        ``"repeat"`` (mirrors :class:`~repro.core.suu_c.SUUCPolicy`).
    enable_segments / enable_fallback:
        The owning policy's ablation flags (delays are already drawn).
    """

    def __init__(
        self,
        plan,
        instance,
        delays: np.ndarray,
        *,
        n_machines: int,
        job_map: np.ndarray,
        n_engine_jobs: int,
        scale: int,
        inner: str = "sem",
        enable_segments: bool = True,
        enable_fallback: bool = True,
    ):
        B, C = delays.shape
        if C != len(plan.programs):
            raise ValueError(
                f"delays have {C} chains but the plan has {len(plan.programs)}"
            )
        if inner not in ("sem", "obl", "repeat"):
            raise ValueError(f"unknown inner subroutine {inner!r}")
        self.plan = plan
        self.delays = np.ascontiguousarray(delays, dtype=np.int64)
        self.n_trials = B
        self.n_chains = C
        self.m = int(n_machines)
        self.job_map = np.ascontiguousarray(job_map, dtype=np.int64)
        self.gamma = int(plan.gamma)
        self.inner = inner
        self.enable_segments = bool(enable_segments)
        self.enable_fallback = bool(enable_fallback)
        self.congestion_limit = float(plan.congestion_limit)
        self.superstep_limit = float(plan.superstep_limit)
        self.topo_global = self.job_map[np.asarray(plan.topo, dtype=np.int64)]

        self._n_items_arr = np.array(
            [len(p.items) for p in plan.programs], dtype=np.int64
        )

        # Flattened chain-program tables: item kind / length / job /
        # effective block length ("need"), padded to the longest chain so
        # the boundary transitions index them as (trials, chains) gathers.
        # Alongside them, CSR spans of each block's (machine, count)
        # pairs — item slot (c, p) flattens to c * P + p, pairs keep
        # their tuple order — feed the kernel-side signature expansion.
        P = max(1, int(self._n_items_arr.max()) if C else 1)
        self._kind = np.full((C, P), _KIND_END, dtype=np.int8)
        self._ilen = np.zeros((C, P), dtype=np.int64)
        self._need = np.ones((C, P), dtype=np.int64)
        self._ijob = np.zeros((C, P), dtype=np.int64)
        self._prelude_len = np.zeros((C, P), dtype=np.int64)
        step_indptr = np.zeros(C * P + 1, dtype=np.int64)
        pre_indptr = np.zeros(C * P + 1, dtype=np.int64)
        step_pairs: list[tuple[int, int]] = []
        pre_pairs: list[tuple[int, int]] = []
        for c, prog in enumerate(plan.programs):
            for p in range(P):
                cp = c * P + p
                if p < len(prog.items):
                    item = prog.items[p]
                    self._ijob[c, p] = self.job_map[item.job]
                    self._ilen[c, p] = item.length
                    if isinstance(item, Pause):
                        self._kind[c, p] = _KIND_PAUSE
                    else:
                        self._kind[c, p] = _KIND_BLOCK
                        self._need[c, p] = max(1, item.length)
                        self._prelude_len[c, p] = item.prelude_length
                        step_pairs.extend(item.steps)
                        pre_pairs.extend(item.prelude)
                step_indptr[cp + 1] = len(step_pairs)
                pre_indptr[cp + 1] = len(pre_pairs)
        self._step_indptr = step_indptr
        self._pre_indptr = pre_indptr
        step_flat = np.array(step_pairs, dtype=np.int64).reshape(-1, 2)
        pre_flat = np.array(pre_pairs, dtype=np.int64).reshape(-1, 2)
        self._step_machine = np.ascontiguousarray(step_flat[:, 0])
        self._step_count = np.ascontiguousarray(step_flat[:, 1])
        self._pre_machine = np.ascontiguousarray(pre_flat[:, 0])
        self._pre_count = np.ascontiguousarray(pre_flat[:, 1])
        #: Signature encoding base: ``pos * tmult + tau`` is collision-free
        #: because ``tau`` never reaches a block's effective length.
        self._tmult = int(self._need.max()) + 1 if C else 2
        #: Kernel backend driving the whole-batch (trials, chains)
        #: transitions — bound at construction so the cursors keep one
        #: backend for their lifetime (run_policy_batch installs the
        #: run's resolved backend via repro.kernels.kernel_context).
        self._kernel = active_backend()

        # The ISSUE's matrices: chain cursors as (n_trials, n_chains) ints.
        self.chain_pos = np.zeros((B, C), dtype=np.int64)
        self.tau = np.zeros((B, C), dtype=np.int64)
        self.delay_remaining = np.zeros((B, C), dtype=np.int64)  # pause countdowns
        self.started = np.zeros((B, C), dtype=bool)
        self.superstep = np.zeros(B, dtype=np.int64)
        self.phase = np.zeros(B, dtype=np.int8)
        self.sig = np.full(B, -1, dtype=np.int64)  # current expansion id
        self.ptr = np.zeros(B, dtype=np.int64)
        #: Per-trial phase key for the current engine step (``key_of``).
        self._keys: list = [("idle",)] * B

        # Superstep expansions memoized by encoded (chain -> item, tau)
        # signature bytes — the transition memo shared across trials and
        # timesteps.  Each entry is one (rows, machines) matrix laid out
        # [prelude solo rows..., expansion rows...], built by the kernel
        # backend's expand_signature.
        self._sig_ids: dict[bytes, int] = {}
        self._sig_rows: list[np.ndarray] = []
        self._sig_congestion: list[int] = []
        self._sig_n_prelude: list[int] = []
        # Row counts as a capacity-doubled array (vector-indexed every
        # step; rebuilding per compile would be quadratic in signatures).
        self._sig_len_np = np.zeros(64, dtype=np.int64)

        # Segment bookkeeping: per trial, segment -> pending long jobs
        # (global ids), and the trial's active segment-inner cursor.
        self._pending: list[dict[int, list[int]]] = [dict() for _ in range(B)]
        self._sem: list = [None] * B
        self.sem_left = np.zeros(B, dtype=np.int64)
        self._in_sem = np.zeros((B, int(n_engine_jobs)), dtype=bool)
        self._prev_remaining: np.ndarray | None = None
        self._seen_t = -1

        self._cache = RoundScheduleCache(instance, scale)
        self._local_schedules: list[FiniteObliviousSchedule] = []
        self._local_ids: dict[bytes, int] = {}
        self._row_memo: dict[tuple, np.ndarray] = {}
        self._idle_row = np.full(self.m, IDLE, dtype=np.int64)
        self._max_spins = int(self.superstep_limit) + self.gamma + 1_000

        self.stats = {
            "t_star": plan.t_star,
            "gamma": plan.gamma,
            "unit": plan.unit,
            "horizon": plan.horizon,
            "n_long_jobs": plan.n_long_jobs,
            "max_congestion": 0,
            "supersteps": 0,
            "sem_runs": 0,
            "fallback": False,
        }

        # Local→global lookup for segment job translation.
        self._g2l = None

    # ------------------------------------------------------------------
    # Per-step batch bookkeeping
    # ------------------------------------------------------------------
    def _batch_step_update(self, state) -> None:
        """Fold the last step's completions into the SEM-run counters.

        Runs once per engine step (from :meth:`prepare_step`): one
        vectorized diff of the batch remaining matrix replaces a per-trial
        ``remaining[jobs].any()`` scan per step.
        """
        cur = state.remaining
        if self._prev_remaining is None:
            self._prev_remaining = np.array(cur, dtype=bool)
            self._seen_t = state.t
            return
        completed = self._prev_remaining & ~cur
        if completed.any():
            rows, cols = np.nonzero(completed & self._in_sem)
            if rows.size:
                np.subtract.at(self.sem_left, rows, 1)
                self._in_sem[rows, cols] = False
        np.copyto(self._prev_remaining, cur)
        self._seen_t = state.t

    # ------------------------------------------------------------------
    # Signature-grouped boundary stepping (the scalar policy's
    # transitions, as whole-batch matrix updates)
    # ------------------------------------------------------------------
    def _register_deferred(self, trials, deferred, s_arr) -> None:
        """Queue deferred pause jobs under their registration segment."""
        if deferred is None:
            return
        mask, jobs = deferred
        rows, cols = np.nonzero(mask)
        for i, j in zip(rows.tolist(), cols.tolist()):
            b = int(trials[i])
            segment = int(s_arr[i]) // self.gamma
            self._pending[b].setdefault(segment, []).append(int(jobs[i, j]))

    def _finish_superstep(self, F: np.ndarray, state) -> None:
        """Advance chain cursors of trials ``F`` whose expansions drained.

        The ``(trials, chains)`` transition itself — block tallies, pause
        countdowns, item advance/entry — runs in the kernel backend on
        gathered cursor copies, scattered back here.
        """
        pos = self.chain_pos[F]
        tau = self.tau[F]
        dr = self.delay_remaining[F]
        into_pause, pause_jobs = self._kernel.chain_finish(
            F, pos, tau, dr, self.started[F], state.remaining,
            self._kind, self._ilen, self._need, self._ijob,
            self._n_items_arr,
        )
        deferred = (into_pause, pause_jobs) if into_pause.any() else None
        self.chain_pos[F] = pos
        self.tau[F] = tau
        self.delay_remaining[F] = dr

        s_new = self.superstep[F] + 1
        self.superstep[F] = s_new
        top = int(s_new.max())
        if top > self.stats["supersteps"]:
            self.stats["supersteps"] = top
        self.sig[F] = -1
        self.ptr[F] = 0
        self._register_deferred(F, deferred, s_new)

        over = np.zeros(F.size, dtype=bool)
        if self.enable_fallback:
            over = s_new > self.superstep_limit
            if over.any():
                self.stats["fallback"] = True
                self.phase[F[over]] = _FALLBACK
        if self.enable_segments:
            at_segment = (s_new % self.gamma == 0) & ~over
            for i in np.flatnonzero(at_segment).tolist():
                b = int(F[i])
                segment = int(s_new[i]) // self.gamma - 1
                pending = [
                    j
                    for j in self._pending[b].pop(segment, [])
                    if state.remaining[b, j]
                ]
                if pending:
                    self._start_sem(b, pending)

    def _build_superstep(self, Bs: np.ndarray, state) -> list:
        """Start due chains, recover pauses, and assign signatures.

        Returns the trials that still need a key this step (signature
        assigned or fallback entered); trials keyed directly (the one-shot
        prelude-then-fallback quirk) are excluded.
        """
        nit = self._n_items_arr
        pos = self.chain_pos[Bs]
        # The scalar loop's pre-build check: a live trial whose chains
        # have all finished is an inconsistent execution.
        if bool((pos >= nit).all(axis=1).any()):
            raise ReproError(
                "SUU-C chains all finished but jobs remain; "
                "inconsistent execution state"
            )
        tau = self.tau[Bs]
        dr = self.delay_remaining[Bs]
        std = self.started[Bs]
        s = self.superstep[Bs]

        # Chain starts, expired-pause recovery (resolved by the
        # segment-boundary SEM run), and the (chain -> block item, tau)
        # signature encoding run as one kernel-backend transition over
        # the gathered (trials, chains) cursors.
        pause1, pause1_jobs, pause2, pause2_jobs, enc = self._kernel.chain_build(
            Bs, pos, tau, dr, std, self.delays[Bs], s, state.remaining,
            self._kind, self._ilen, self._need, self._ijob, nit,
            self._tmult,
        )

        self.chain_pos[Bs] = pos
        self.tau[Bs] = tau
        self.delay_remaining[Bs] = dr
        self.started[Bs] = std
        self._register_deferred(
            Bs, (pause1, pause1_jobs) if pause1.any() else None, s
        )
        self._register_deferred(
            Bs, (pause2, pause2_jobs) if pause2.any() else None, s
        )

        again: list = []
        keys = self._keys
        for i, b in enumerate(Bs.tolist()):
            sig_bytes = enc[i].tobytes()
            sid = self._sig_ids.get(sig_bytes)
            if sid is None:
                sid = self._compile_signature(sig_bytes, enc[i])
            congestion = self._sig_congestion[sid]
            if congestion > self.stats["max_congestion"]:
                self.stats["max_congestion"] = congestion
            if self.enable_fallback and congestion > self.congestion_limit:
                self.stats["fallback"] = True
                self.phase[b] = _FALLBACK
                if self._sig_n_prelude[sid] > 0:
                    # The scalar loop drains exactly one already-queued
                    # prelude solo row before it notices the fallback
                    # phase; replicate that one-shot emission.
                    keys[b] = ("xfb", sid)
                else:
                    again.append(b)
            else:
                self.sig[b] = sid
                self.ptr[b] = 0
                again.append(b)
        return again

    def _compile_signature(self, sig_bytes: bytes, enc_row: np.ndarray) -> int:
        """Flatten one distinct superstep signature into shared rows.

        Entering blocks (``tau == 0``) contribute their prelude solo rows
        first, in chain order — the scalar policy's solo-queue emission
        order — followed by the congestion-expansion rows.  The row
        construction itself runs in the kernel backend
        (``expand_signature``) over the flat CSR tables built at
        construction; this method owns the memo bookkeeping.
        """
        rows, n_prelude, congestion = self._kernel.expand_signature(
            enc_row, self._tmult, self._ijob, self._prelude_len,
            self._pre_indptr, self._pre_machine, self._pre_count,
            self._step_indptr, self._step_machine, self._step_count,
            self.m, IDLE,
        )
        sid = len(self._sig_rows)
        self._sig_ids[sig_bytes] = sid
        self._sig_rows.append(rows)
        self._sig_congestion.append(int(congestion))
        self._sig_n_prelude.append(int(n_prelude))
        if sid >= self._sig_len_np.size:
            grown = np.zeros(2 * self._sig_len_np.size, dtype=np.int64)
            grown[: self._sig_len_np.size] = self._sig_len_np
            self._sig_len_np = grown
        self._sig_len_np[sid] = rows.shape[0]
        return sid

    # ------------------------------------------------------------------
    # Segment inner runs
    # ------------------------------------------------------------------
    def _start_sem(self, b: int, jobs_global: list[int]) -> None:
        jobs_global = np.array(sorted(jobs_global), dtype=np.int64)
        if self._g2l is None:
            g2l = np.full(int(self.job_map.max()) + 1, -1, dtype=np.int64)
            g2l[self.job_map] = np.arange(self.job_map.size)
            self._g2l = g2l
        jobs_local = self._g2l[jobs_global]
        if self.inner == "sem":
            self._sem[b] = _SegmentSemCursor(jobs_global, jobs_local, self.m)
        elif self.inner == "obl":
            # SUU-I-OBL solves LP1(jobs, 1/2) once at entry and repeats
            # the rounded schedule; the solve is shared per distinct
            # pending set through the round cache.
            sid = self._cache.schedule_id(0.5, jobs_local)
            self._sem[b] = _RepeatCursor(
                "sem-row", sid, self._cache.schedule(sid).length
            )
        else:  # "repeat": the plan's LP2 columns, no new solve
            lid = self._local_schedule_id(jobs_local)
            self._sem[b] = _RepeatCursor(
                "rep-row", lid, self._local_schedules[lid].length
            )
        self.sem_left[b] = jobs_global.size
        self._in_sem[b, jobs_global] = True
        self.phase[b] = _SEM
        self.stats["sem_runs"] += 1

    def _local_schedule_id(self, jobs_local: np.ndarray) -> int:
        """Register the ``inner="repeat"`` schedule for one pending set."""
        key = np.ascontiguousarray(jobs_local, dtype=np.int64).tobytes()
        lid = self._local_ids.get(key)
        if lid is None:
            schedule = long_repeat_schedule(
                self.plan, jobs_local, self.m, int(self.job_map.size)
            )
            lid = len(self._local_schedules)
            self._local_schedules.append(schedule)
            self._local_ids[key] = lid
        return lid

    def _sem_begin_round(self, cur: _SegmentSemCursor, remaining_local) -> None:
        cur.round += 1
        target = 2.0 ** (cur.round - 2)  # round 1 -> 1/2, doubling after
        cur.sid = self._cache.schedule_id(target, remaining_local)
        cur.step = 0

    def _warm_sem_boundary(self, sem: np.ndarray, state) -> None:
        """Coalesce the segment-SEM round solves due at this boundary.

        Collects every member trial about to start a new doubling round and
        hands the distinct (target, survivor set) misses to
        ``RoundScheduleCache.ensure_many`` — concurrent solves, and under
        ``lp_reuse="subset"`` a shared union-anchor solve most members then
        derive from.  Purely cache-warming: the serial ``_sem_key`` walk
        that follows produces identical keys whether or not this ran.
        """
        requests = []
        for b in sem.tolist():
            if self.sem_left[b] <= 0:
                continue
            cur = self._sem[b]
            if type(cur) is _RepeatCursor or cur.mode != "rounds":
                continue
            if cur.sid is not None and cur.step < self._cache.schedule(
                cur.sid
            ).length:
                continue
            if cur.round >= cur.n_rounds:
                continue  # about to enter a fallback mode, not a round
            remaining_local = cur.jobs_local[state.remaining[b][cur.jobs_global]]
            if remaining_local.size:
                requests.append((2.0 ** (cur.round - 1), remaining_local))
        if len(requests) > 1:
            self._cache.ensure_many(requests)

    def _sem_key(self, b: int, remaining_row: np.ndarray):
        cur = self._sem[b]
        if type(cur) is _RepeatCursor:
            if cur.length == 0:
                return ("idle",)
            return (cur.tag, cur.sid, cur.step % cur.length)
        if cur.mode == "serial":
            for gj in cur.jobs_global:
                if remaining_row[gj]:
                    return ("sem-serial", int(gj))
            return ("idle",)  # unreachable while sem_left > 0
        if cur.mode == "repeat":
            length = self._cache.schedule(cur.sid).length
            return ("sem-row", cur.sid, cur.step % length)
        while cur.sid is None or cur.step >= self._cache.schedule(cur.sid).length:
            remaining_local = cur.jobs_local[remaining_row[cur.jobs_global]]
            if remaining_local.size == 0:
                return ("idle",)
            if cur.round >= cur.n_rounds:
                if cur.universe_size <= self.m:
                    cur.mode = "serial"
                    return self._sem_key(b, remaining_row)
                cur.mode = "repeat"
                cur.step = 0
                if cur.sid is None or self._cache.schedule(cur.sid).length == 0:
                    self._sem_begin_round(cur, remaining_local)
                    cur.step = 0
                return self._sem_key(b, remaining_row)
            self._sem_begin_round(cur, remaining_local)
        return ("sem-row", cur.sid, cur.step)

    # ------------------------------------------------------------------
    # The phased-protocol surface
    # ------------------------------------------------------------------
    def prepare_step(self, state, members) -> None:
        """Advance every member trial to its next emitted row.

        Called once per engine step (before any ``phase_key`` query) with
        the trials this cursor is driving.  Signature-grouped stepping
        happens here: finish/build transitions run as whole-batch matrix
        updates, distinct signatures advance once through the memo, and
        the resulting keys are scattered into :meth:`key_of`'s table.
        """
        if state.t != self._seen_t:
            self._batch_step_update(state)
        pending = np.asarray(members, dtype=np.int64)
        keys = self._keys
        for _ in range(self._max_spins):
            if pending.size == 0:
                return
            ph = self.phase[pending]
            again: list = []

            fb = pending[ph == _FALLBACK]
            if fb.size:
                self._fallback_keys(fb, state)

            sem = pending[ph == _SEM]
            if sem.size > 1:
                self._warm_sem_boundary(sem, state)
            for b in sem.tolist():
                if self.sem_left[b] > 0:
                    keys[b] = self._sem_key(b, state.remaining[b])
                else:
                    self.phase[b] = _SUPER
                    again.append(b)

            sup = pending[ph == _SUPER]
            if sup.size:
                sid = self.sig[sup]
                has = sid >= 0
                built = sup[has]
                if built.size:
                    sids = sid[has]
                    room = self.ptr[built] < self._sig_len_np[sids]
                    emit = built[room]
                    for b, s_, p_ in zip(
                        emit.tolist(),
                        sids[room].tolist(),
                        self.ptr[emit].tolist(),
                    ):
                        keys[b] = ("x", s_, p_)
                    drained = built[~room]
                    if drained.size:
                        self._finish_superstep(drained, state)
                        again.extend(drained.tolist())
                fresh = sup[~has]
                if fresh.size:
                    again.extend(self._build_superstep(fresh, state))
            pending = np.asarray(again, dtype=np.int64)
        raise ReproError(
            f"SUU-C made no progress after {self._max_spins} internal transitions"
        )

    def key_of(self, trial: int):
        """Trial ``trial``'s phase key, computed by :meth:`prepare_step`.

        Keys group trials receiving identical rows this step: ``("x", sig,
        ptr)`` for signature rows (preludes + expansion), ``("xfb", sig)``
        for the one-shot prelude row preceding a congestion fallback,
        ``("sem-row", sid, step)`` / ``("rep-row", lid, step)`` /
        ``("sem-serial", job)`` for segment inner rows, ``("fb", job)``
        for the serial fallback, ``("idle",)`` otherwise.
        """
        return self._keys[trial]

    def _fallback_keys(self, fb: np.ndarray, state) -> None:
        runnable = (
            (state.remaining[fb] & state.eligible[fb])[:, self.topo_global]
        )
        any_run = runnable.any(axis=1)
        first = np.argmax(runnable, axis=1)
        keys = self._keys
        for i, b in enumerate(fb.tolist()):
            if any_run[i]:
                keys[b] = ("fb", int(self.topo_global[first[i]]))
            else:
                keys[b] = ("idle",)

    def dispatch(self, key, trials) -> np.ndarray:
        """The shared row for ``key``; advances the member trials' cursors."""
        tag = key[0]
        if tag == "x":
            self.ptr[np.asarray(trials, dtype=np.int64)] += 1
            return self._sig_rows[key[1]][key[2]]
        if tag == "sem-row" or tag == "rep-row":
            for b in trials:
                self._sem[b].step += 1
            row = self._row_memo.get(key)
            if row is None:
                if tag == "sem-row":
                    local = self._cache.schedule(key[1]).assignment_at(key[2])
                else:
                    local = self._local_schedules[key[1]].assignment_at(key[2])
                row = np.where(local >= 0, self.job_map[np.maximum(local, 0)], IDLE)
                self._row_memo[key] = row
            return row
        if tag == "xfb":
            # One-shot: the first queued prelude row of a superstep whose
            # congestion triggered the fallback (see _build_superstep).
            return self._sig_rows[key[1]][0]
        if tag == "idle":
            return self._idle_row
        # "sem-serial" / "fb": every machine on one job.
        row = self._row_memo.get(key)
        if row is None:
            row = np.full(self.m, key[1], dtype=np.int64)
            self._row_memo[key] = row
        return row
