"""Array-based chain cursors: batch-native SUU-C execution (discipline v2).

Under RNG discipline v1, SUU-C and SUU-T run grouped batch dispatch with
*per-trial scalar replicas* (:class:`~repro.core.phased.
ReplicaGroupedDispatch`): bit-identity with the serial path forces each
trial to replay its own ``_ChainState`` objects, so a batch of ``B``
trials pays ``B`` full Python policy steps per timestep and — the real
cost — ``B`` independent LP1 solves for every segment SEM run.  That is
why BENCH_3 measured ``suu-c`` at ~1x while ``sem`` hit 25x.

Discipline v2 drops the bit-identity constraint (statistical equivalence
only), which unlocks the batch-native layout this module implements:

* **Chain cursors as matrices.**  Per-trial ``_ChainState`` objects become
  ``(n_trials, n_chains)`` int arrays — ``chain_pos`` (current item),
  ``tau`` (supersteps into the current block), ``delay_remaining`` (pause
  countdowns), plus per-trial superstep/phase vectors.  Chain start delays
  arrive as one ``(n_trials, n_chains)`` matrix drawn from the batch's
  :class:`~repro.util.rng.BatchStreams`.
* **Signature-grouped superstep expansions.**  A superstep's flattened
  rows depend only on the (chain → block item, tau) signature, not on the
  trial, so expansions are memoized by signature and shared across trials
  *and* timesteps: grouped dispatch is no longer degenerate — trials with
  equal ``(delays, chain-position)`` signatures receive one shared row.
* **Shared segment SEM runs.**  The segment-boundary SUU-I-SEM runs on
  long-job groups are driven by lightweight per-trial cursors over one
  shared :class:`~repro.core.phased.RoundScheduleCache` (itself backed by
  the cross-batch process cache), replacing per-trial ``SUUISemPolicy``
  replicas and collapsing the per-(trial, segment, round) LP solves into
  one solve per distinct (target, survivor set).

The execution semantics replicate the scalar :class:`~repro.core.suu_c.
SUUCPolicy` transition for transition — same superstep builds, same pause
registration segments, same fallback triggers, same inner-SEM round
doubling — so that given equal delays and equal thresholds, array cursors
and object cursors produce *identical* executions (the test suite checks
exactly this), and under fresh v2 randomness the makespan distribution
matches v1's.

Plans with preludes (the non-polynomial ``t_LP2`` rounding trick,
``unit > 1``) or a non-SEM inner policy keep the v1 replica path; the
policies decline ``start_phased_v2`` for them.
"""

from __future__ import annotations

import numpy as np

from repro.core.phased import RoundScheduleCache
from repro.core.suu_i_sem import paper_round_count
from repro.errors import ReproError
from repro.schedule.base import IDLE
from repro.schedule.pseudo import Pause

__all__ = ["ChainCursorBatch"]

# Per-trial phase codes.
_SUPER = 0
_SEM = 1
_FALLBACK = 2


class _SegmentSemCursor:
    """One trial's cursor through a segment SUU-I-SEM run.

    A faithful replica of :class:`~repro.core.suu_i_sem.SUUISemPolicy`'s
    control state (doubling rounds, serial/repeat-last fallbacks) over the
    long jobs of one segment, with schedules shared through the batch's
    :class:`RoundScheduleCache`.  ``jobs_local`` are ids in the cache's
    (sub-)instance — what LP1 is solved on — and ``jobs_global`` are the
    corresponding engine ids; both ascending, index-aligned.
    """

    __slots__ = (
        "jobs_global", "jobs_local", "universe_size", "n_rounds",
        "mode", "round", "sid", "step",
    )

    def __init__(self, jobs_global, jobs_local, n_machines):
        self.jobs_global = jobs_global
        self.jobs_local = jobs_local
        self.universe_size = int(jobs_local.size)
        self.n_rounds = paper_round_count(self.universe_size, n_machines)
        self.mode = "rounds"  # rounds | serial | repeat
        self.round = 0
        self.sid: int | None = None
        self.step = 0


class ChainCursorBatch:
    """Array-based cursors driving ``n_trials`` lock-stepped SUU-C runs.

    One instance serves one batch execution of one chain plan (for SUU-T,
    one per forest block).  The owning policy calls :meth:`row_key` from
    ``phase_key`` and :meth:`dispatch` from ``assign_group``.

    Parameters
    ----------
    plan:
        The shared, trial-independent ``_ChainPlan`` (no preludes:
        ``plan.unit == 1``).
    instance:
        The (sub-)instance the plan was prepared on — LP1 segment solves
        run against it.
    delays:
        ``(n_trials, n_chains)`` chain start delays (already scaled by the
        plan's unit).
    n_machines:
        Engine machine count (equals the sub-instance's for SUU-T blocks).
    job_map:
        Maps the plan's job ids to engine job ids (identity for SUU-C;
        the block's global ids for SUU-T).
    n_engine_jobs:
        Width of the engine's job axis (the *global* job count — larger
        than the plan's for SUU-T blocks).
    scale:
        LP1 rounding scale for segment SEM runs.
    enable_segments / enable_fallback:
        The owning policy's ablation flags (delays are already drawn).
    """

    def __init__(
        self,
        plan,
        instance,
        delays: np.ndarray,
        *,
        n_machines: int,
        job_map: np.ndarray,
        n_engine_jobs: int,
        scale: int,
        enable_segments: bool = True,
        enable_fallback: bool = True,
    ):
        B, C = delays.shape
        if C != len(plan.programs):
            raise ValueError(
                f"delays have {C} chains but the plan has {len(plan.programs)}"
            )
        self.plan = plan
        self.delays = np.ascontiguousarray(delays, dtype=np.int64)
        self.n_trials = B
        self.n_chains = C
        self.m = int(n_machines)
        self.job_map = np.ascontiguousarray(job_map, dtype=np.int64)
        self.gamma = int(plan.gamma)
        self.enable_segments = bool(enable_segments)
        self.enable_fallback = bool(enable_fallback)
        self.congestion_limit = float(plan.congestion_limit)
        self.superstep_limit = float(plan.superstep_limit)
        self.topo_global = self.job_map[np.asarray(plan.topo, dtype=np.int64)]

        self._items = [p.items for p in plan.programs]
        self._n_items = [len(p.items) for p in plan.programs]

        # The ISSUE's matrices: chain cursors as (n_trials, n_chains) ints.
        self.chain_pos = np.zeros((B, C), dtype=np.int64)
        self.tau = np.zeros((B, C), dtype=np.int64)
        self.delay_remaining = np.zeros((B, C), dtype=np.int64)  # pause countdowns
        self.started = np.zeros((B, C), dtype=bool)
        self.superstep = np.zeros(B, dtype=np.int64)
        self.phase = np.zeros(B, dtype=np.int8)
        self.sig = np.full(B, -1, dtype=np.int64)  # current expansion id
        self.ptr = np.zeros(B, dtype=np.int64)

        # Superstep expansions memoized by (chain -> item, tau) signature,
        # shared across trials and timesteps.
        self._sig_ids: dict[tuple, int] = {}
        self._sig_rows: list[list[np.ndarray]] = []
        self._sig_len: list[int] = []
        self._sig_congestion: list[int] = []

        # Segment bookkeeping: per trial, segment -> pending long jobs
        # (global ids), and the trial's active segment-SEM cursor.
        self._pending: list[dict[int, list[int]]] = [dict() for _ in range(B)]
        self._sem: list[_SegmentSemCursor | None] = [None] * B
        self.sem_left = np.zeros(B, dtype=np.int64)
        self._in_sem = np.zeros((B, int(n_engine_jobs)), dtype=bool)
        self._prev_remaining: np.ndarray | None = None
        self._seen_t = -1

        self._cache = RoundScheduleCache(instance, scale)
        self._row_memo: dict[tuple, np.ndarray] = {}
        self._idle_row = np.full(self.m, IDLE, dtype=np.int64)
        self._max_spins = int(self.superstep_limit) + self.gamma + 1_000

        self.stats = {
            "t_star": plan.t_star,
            "gamma": plan.gamma,
            "unit": plan.unit,
            "horizon": plan.horizon,
            "n_long_jobs": plan.n_long_jobs,
            "max_congestion": 0,
            "supersteps": 0,
            "sem_runs": 0,
            "fallback": False,
        }

        # Local→global lookup for signature job translation.
        self._g2l = None

    # ------------------------------------------------------------------
    # Per-step batch bookkeeping
    # ------------------------------------------------------------------
    def _batch_step_update(self, state) -> None:
        """Fold the last step's completions into the SEM-run counters.

        Runs once per engine step (lazily, on the first ``row_key`` call
        that sees the new ``state.t``): one vectorized diff of the batch
        remaining matrix replaces a per-trial ``remaining[jobs].any()``
        scan per step.
        """
        cur = state.remaining
        if self._prev_remaining is None:
            self._prev_remaining = np.array(cur, dtype=bool)
            self._seen_t = state.t
            return
        completed = self._prev_remaining & ~cur
        if completed.any():
            rows, cols = np.nonzero(completed & self._in_sem)
            if rows.size:
                np.subtract.at(self.sem_left, rows, 1)
                self._in_sem[rows, cols] = False
        np.copyto(self._prev_remaining, cur)
        self._seen_t = state.t

    # ------------------------------------------------------------------
    # Chain bookkeeping (the scalar policy's transitions, on arrays)
    # ------------------------------------------------------------------
    def _enter(self, b: int, c: int, deferred: list[int]) -> None:
        """Initialize chain ``c``'s current item after entering it."""
        p = self.chain_pos[b, c]
        if p >= self._n_items[c]:
            return
        item = self._items[c][p]
        if isinstance(item, Pause):
            self.delay_remaining[b, c] = item.length
            deferred.append(int(self.job_map[item.job]))
        else:
            self.tau[b, c] = 0

    def _register(self, b: int, jobs: list[int], superstep: int) -> None:
        if not jobs:
            return
        segment = superstep // self.gamma
        self._pending[b].setdefault(segment, []).extend(jobs)

    def _signature(self, b: int) -> tuple:
        """The (chain → block item, tau) signature of trial ``b``'s next
        superstep, after starting newly-due chains and recovering expired
        pauses (the scalar ``_build_superstep`` preamble)."""
        s = int(self.superstep[b])
        deferred: list[int] = []
        remaining = self._prev_remaining[b]
        parts = []
        for c in range(self.n_chains):
            p = self.chain_pos[b, c]
            if not self.started[b, c]:
                if self.delays[b, c] <= s:
                    self.started[b, c] = True
                    self._enter(b, c, deferred)
                    p = self.chain_pos[b, c]
                else:
                    continue
            if p >= self._n_items[c]:
                continue
            item = self._items[c][p]
            if isinstance(item, Pause):
                # Re-check pauses that expired while their job was
                # incomplete (resolved by the segment-boundary SEM run).
                if (
                    self.delay_remaining[b, c] == 0
                    and not remaining[self.job_map[item.job]]
                ):
                    self.chain_pos[b, c] = p + 1
                    self._enter(b, c, deferred)
                    p = self.chain_pos[b, c]
                    if p < self._n_items[c]:
                        item = self._items[c][p]
                        if not isinstance(item, Pause):
                            parts.append((c, int(p), 0))
                continue
            parts.append((c, int(p), int(self.tau[b, c])))
        self._register(b, deferred, s)
        return tuple(parts)

    def _chains_done(self, b: int) -> bool:
        return all(
            self.chain_pos[b, c] >= self._n_items[c]
            for c in range(self.n_chains)
        )

    def _build_superstep(self, b: int) -> None:
        # The scalar loop's pre-build check: a live trial whose chains
        # have all finished is an inconsistent execution.
        if self._chains_done(b):
            raise ReproError(
                "SUU-C chains all finished but jobs remain; "
                "inconsistent execution state"
            )
        sig_key = self._signature(b)
        sid = self._sig_ids.get(sig_key)
        if sid is None:
            sid = self._compile_signature(sig_key)
        congestion = self._sig_congestion[sid]
        if congestion > self.stats["max_congestion"]:
            self.stats["max_congestion"] = congestion
        if self.enable_fallback and congestion > self.congestion_limit:
            self.stats["fallback"] = True
            self.phase[b] = _FALLBACK
            return
        self.sig[b] = sid
        self.ptr[b] = 0

    def _compile_signature(self, sig_key: tuple) -> int:
        """Flatten one distinct superstep signature into shared rows."""
        per_machine: list[list[int]] = [[] for _ in range(self.m)]
        for c, p, tu in sig_key:
            item = self._items[c][p]
            job = int(self.job_map[item.job])
            for i in item.machines_at(tu):
                per_machine[i].append(job)
        congestion = max((len(lst) for lst in per_machine), default=0)
        rows = []
        for r in range(congestion):
            row = self._idle_row.copy()
            for i in range(self.m):
                if r < len(per_machine[i]):
                    row[i] = per_machine[i][r]
            rows.append(row)
        sid = len(self._sig_rows)
        self._sig_ids[sig_key] = sid
        self._sig_rows.append(rows)
        self._sig_len.append(congestion)
        self._sig_congestion.append(congestion)
        return sid

    def _finish_superstep(self, b: int, remaining: np.ndarray) -> None:
        """Advance trial ``b``'s cursors after its superstep executed."""
        deferred: list[int] = []
        for c in range(self.n_chains):
            if not self.started[b, c]:
                continue
            p = self.chain_pos[b, c]
            if p >= self._n_items[c]:
                continue
            item = self._items[c][p]
            if isinstance(item, Pause):
                if self.delay_remaining[b, c] > 0:
                    self.delay_remaining[b, c] -= 1
                if (
                    self.delay_remaining[b, c] == 0
                    and not remaining[self.job_map[item.job]]
                ):
                    self.chain_pos[b, c] = p + 1
                    self._enter(b, c, deferred)
            else:
                t = self.tau[b, c] + 1
                if t >= max(1, item.length):
                    if remaining[self.job_map[item.job]]:
                        self.tau[b, c] = 0  # retry the block
                    else:
                        self.chain_pos[b, c] = p + 1
                        self._enter(b, c, deferred)
                else:
                    self.tau[b, c] = t
        s = int(self.superstep[b]) + 1
        self.superstep[b] = s
        if s > self.stats["supersteps"]:
            self.stats["supersteps"] = s
        self.sig[b] = -1
        self.ptr[b] = 0
        self._register(b, deferred, s)

        if self.enable_fallback and s > self.superstep_limit:
            self.stats["fallback"] = True
            self.phase[b] = _FALLBACK
            return
        if self.enable_segments and s % self.gamma == 0:
            segment = s // self.gamma - 1
            pending = [
                j for j in self._pending[b].pop(segment, []) if remaining[j]
            ]
            if pending:
                self._start_sem(b, pending)

    def _start_sem(self, b: int, jobs_global: list[int]) -> None:
        jobs_global = np.array(sorted(jobs_global), dtype=np.int64)
        if self._g2l is None:
            g2l = np.full(int(self.job_map.max()) + 1, -1, dtype=np.int64)
            g2l[self.job_map] = np.arange(self.job_map.size)
            self._g2l = g2l
        jobs_local = self._g2l[jobs_global]
        self._sem[b] = _SegmentSemCursor(jobs_global, jobs_local, self.m)
        self.sem_left[b] = jobs_global.size
        self._in_sem[b, jobs_global] = True
        self.phase[b] = _SEM
        self.stats["sem_runs"] += 1

    # ------------------------------------------------------------------
    # Segment SEM cursor stepping (SUUISemPolicy's control flow)
    # ------------------------------------------------------------------
    def _sem_begin_round(self, cur: _SegmentSemCursor, remaining_local) -> None:
        cur.round += 1
        target = 2.0 ** (cur.round - 2)  # round 1 -> 1/2, doubling after
        cur.sid = self._cache.schedule_id(target, remaining_local)
        cur.step = 0

    def _sem_key(self, b: int, remaining_row: np.ndarray):
        cur = self._sem[b]
        if cur.mode == "serial":
            for gj in cur.jobs_global:
                if remaining_row[gj]:
                    return ("sem-serial", int(gj))
            return ("idle",)  # unreachable while sem_left > 0
        if cur.mode == "repeat":
            length = self._cache.schedule(cur.sid).length
            return ("sem-row", cur.sid, cur.step % length)
        while cur.sid is None or cur.step >= self._cache.schedule(cur.sid).length:
            remaining_local = cur.jobs_local[remaining_row[cur.jobs_global]]
            if remaining_local.size == 0:
                return ("idle",)
            if cur.round >= cur.n_rounds:
                if cur.universe_size <= self.m:
                    cur.mode = "serial"
                    return self._sem_key(b, remaining_row)
                cur.mode = "repeat"
                cur.step = 0
                if cur.sid is None or self._cache.schedule(cur.sid).length == 0:
                    self._sem_begin_round(cur, remaining_local)
                    cur.step = 0
                return self._sem_key(b, remaining_row)
            self._sem_begin_round(cur, remaining_local)
        return ("sem-row", cur.sid, cur.step)

    # ------------------------------------------------------------------
    # The phased-protocol surface
    # ------------------------------------------------------------------
    def row_key(self, b: int, state):
        """Advance trial ``b`` to its next emitted row; return its key.

        Keys group trials receiving identical rows this step:
        ``("x", sig, ptr)`` for superstep expansion rows, ``("sem-row",
        sid, step)`` / ``("sem-serial", job)`` for segment SEM rows,
        ``("fb", job)`` for the serial fallback, ``("idle",)`` otherwise.
        """
        if state.t != self._seen_t:
            self._batch_step_update(state)
        remaining_row = state.remaining[b]
        for _ in range(self._max_spins):
            ph = self.phase[b]
            if ph == _FALLBACK:
                return self._fallback_key(b, state, remaining_row)
            if ph == _SEM:
                if self.sem_left[b] > 0:
                    return self._sem_key(b, remaining_row)
                self.phase[b] = _SUPER
                continue
            sid = self.sig[b]
            if sid >= 0:
                if self.ptr[b] < self._sig_len[sid]:
                    return ("x", int(sid), int(self.ptr[b]))
                self._finish_superstep(b, remaining_row)
                continue
            self._build_superstep(b)
        raise ReproError(
            f"SUU-C made no progress after {self._max_spins} internal transitions"
        )

    def _fallback_key(self, b: int, state, remaining_row: np.ndarray):
        eligible_row = state.eligible[b]
        for gj in self.topo_global:
            if remaining_row[gj] and eligible_row[gj]:
                return ("fb", int(gj))
        return ("idle",)

    def dispatch(self, key, trials) -> np.ndarray:
        """The shared row for ``key``; advances the member trials' cursors."""
        tag = key[0]
        if tag == "x":
            _, sid, ptr = key
            for b in trials:
                self.ptr[b] += 1
            return self._sig_rows[sid][ptr]
        if tag == "sem-row":
            for b in trials:
                self._sem[b].step += 1
            row = self._row_memo.get(key)
            if row is None:
                local = self._cache.schedule(key[1]).assignment_at(key[2])
                row = np.where(local >= 0, self.job_map[np.maximum(local, 0)], IDLE)
                self._row_memo[key] = row
            return row
        if tag == "idle":
            return self._idle_row
        # "sem-serial" / "fb": every machine on one job.
        row = self._row_memo.get(key)
        if row is None:
            row = np.full(self.m, key[1], dtype=np.int64)
            self._row_memo[key] = row
        return row
