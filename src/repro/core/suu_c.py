"""SUU-C: the disjoint-chains algorithm (Section 4, Theorem 9).

Construction (all at ``start()``):

1. Solve (LP2) and round it (Lemma 6) into an integral assignment whose
   load and chain lengths are ``O(t_LP2)``.
2. Compile each chain into a *chain program* ``Σ_k``: one oblivious block
   per short job (repeated adaptively until the job completes); each long
   job (length ``d̂_j > γ = t_LP2 / log2(n+m)``) becomes a *pause* of ``γ``
   supersteps.
3. If ``t_LP2`` exceeds ``poly(n, m)``, round block step counts down to
   multiples of ``Δ = ceil(t_LP2 / nm)`` and re-insert the lost steps as
   solo *preludes* (real steps executing only that job) — the trick of
   Section 4 that keeps the delay range polynomial.
4. Draw one random start delay per chain from ``{0, Δ, ..., H}`` (``H`` =
   assignment load); Theorem 7 gives congestion
   ``O(log(n+m)/log log(n+m))`` whp.

Execution (per engine step): chains advance superstep by superstep; each
superstep is *flattened* into ``c(s)`` real steps (one per unit of
congestion).  After every segment of ``γ`` supersteps, the policy suspends
the chains and runs SUU-I-SEM on the long jobs whose pauses started in that
segment, resuming once they complete.  If congestion or runtime exceeds
the high-probability bounds, the policy falls back to the trivial
``O(n)``-approximation (all machines on one eligible job at a time), which
the paper invokes with probability at most ``1/n``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_policy
from repro.core.chain_batch import (
    ChainCursorBatch,
    long_repeat_schedule,
    prelude_rows,
)
from repro.core.lp2 import round_lp2, solve_lp2
from repro.core.phased import ReplicaGroupedDispatch, shared_solve_cache
from repro.core.rounding import PAPER_SCALE
from repro.core.suu_i_sem import SUUISemPolicy
from repro.errors import ReproError
from repro.instance.chains import extract_chains
from repro.schedule.base import IDLE, PhasedPolicy, SimulationState
from repro.schedule.oblivious import RepeatingObliviousPolicy
from repro.schedule.pseudo import JobBlock, Pause, build_chain_programs, draw_delays

__all__ = ["SUUCPolicy"]


@dataclass(frozen=True)
class _ChainPlan:
    """Trial-independent SUU-C preparation (everything before the delays).

    The LP2 solve, Lemma 6 rounding, and chain-program compilation depend
    only on the instance and the policy's configuration — no randomness —
    so lock-stepped trials share one plan instead of re-solving per trial.
    """

    chains: tuple
    t_star: float
    gamma: int
    unit: int
    programs: tuple
    horizon: int
    n_long_jobs: int
    congestion_limit: float
    superstep_limit: float
    topo: tuple
    #: Rounded LP2 columns of the long (paused) jobs, as
    #: ``((job, ((machine, steps), ...)), ...)`` — the raw material of the
    #: ``inner="repeat"`` segment subroutine (no re-solve, just repeat).
    long_steps: tuple = ()


@dataclass
class _ChainState:
    """Mutable execution cursor for one chain program."""

    items: tuple
    pos: int = 0
    tau: int = 0
    pause_left: int = 0
    started: bool = False
    entering: bool = False

    @property
    def done(self) -> bool:
        return self.pos >= len(self.items)

    @property
    def item(self):
        return self.items[self.pos]


@register_policy("suu-c", default_for=("chains",))
class SUUCPolicy(ReplicaGroupedDispatch, PhasedPolicy):
    """The chains algorithm of Theorem 9 as an adaptive policy.

    Parameters
    ----------
    scale:
        Lemma 6 rounding scale (paper: 6).
    enable_delays:
        Random chain start delays (Theorem 7).  Disabling is the E-DELAY
        ablation: congestion may grow to Θ(number of chains).
    enable_segments:
        Long-job handling.  Disabling treats every job as short, so very
        long blocks serialize entire machines (the A-SEG ablation).
    enable_fallback:
        Switch to the serial ``O(n)``-approximation when congestion or the
        superstep count exceeds their high-probability bounds.
    congestion_factor, length_factor:
        Constants in those bounds (the paper only fixes them up to O(·)).
    inner:
        Independent-jobs subroutine for segment long-job runs: ``"sem"``
        (the paper's SUU-I-SEM, giving the ``log log`` inner factor),
        ``"obl"`` (solve LP1 on the pending long jobs once and repeat the
        schedule until done — the Lin–Rajaraman style ``log n`` inner
        factor, used as the Table 1 comparator), or ``"repeat"`` (repeat
        the already-rounded LP2 columns of the pending jobs with no new
        solve at all — the cheapest oblivious-inner variant).
    chains:
        Explicit chain list (job id lists).  Default: extracted from the
        instance's precedence graph, which must be disjoint chains.

    Attributes
    ----------
    stats:
        Per-execution diagnostics (congestion profile, superstep count,
        number of SEM segment runs, fallback trigger), populated as the
        execution proceeds; read by the experiment harness.  Under grouped
        batch dispatch the driving policy object never executes itself —
        per-trial diagnostics live on its replicas.
    """

    name = "SUU-C"

    def __init__(
        self,
        scale: int = PAPER_SCALE,
        *,
        enable_delays: bool = True,
        enable_segments: bool = True,
        enable_fallback: bool = True,
        congestion_factor: float = 16.0,
        length_factor: float = 64.0,
        inner: str = "sem",
        chains=None,
    ):
        if inner not in ("sem", "obl", "repeat"):
            raise ValueError(
                f"inner must be 'sem', 'obl' or 'repeat', got {inner!r}"
            )
        self.scale = int(scale)
        self.enable_delays = bool(enable_delays)
        self.enable_segments = bool(enable_segments)
        self.enable_fallback = bool(enable_fallback)
        self.congestion_factor = float(congestion_factor)
        self.length_factor = float(length_factor)
        self.inner = inner
        self.explicit_chains = chains
        self.stats: dict = {}
        self._instance = None
        #: Precomputed :class:`_ChainPlan` installed by grouped dispatch so
        #: lock-stepped trial replicas skip the per-trial LP2 solve.
        self._shared_plan: _ChainPlan | None = None
        #: Array-cursor engine under RNG discipline v2 (None on v1 paths).
        self._v2: ChainCursorBatch | None = None

    # ------------------------------------------------------------------
    def _plan_cache_key(self, instance) -> tuple:
        """Cross-batch memo key: everything :meth:`_prepare` depends on."""
        chains_key = (
            None
            if self.explicit_chains is None
            else tuple(tuple(map(int, c)) for c in self.explicit_chains)
        )
        return (
            "chain-plan",
            instance.digest(),
            self.scale,
            self.enable_segments,
            self.congestion_factor,
            self.length_factor,
            chains_key,
        )

    def prepare_plan(self, instance) -> _ChainPlan:
        """:meth:`_prepare` through the cross-batch process solve cache.

        The plan is an immutable pure function of ``(instance, config)``,
        so worker chunks and grid cells share one LP2 solve per distinct
        key instead of re-solving per batch.
        """
        return shared_solve_cache().lookup(
            self._plan_cache_key(instance), lambda: self._prepare(instance)
        )

    def _prepare(self, instance) -> _ChainPlan:
        """The trial-independent construction: LP2, rounding, programs.

        Deterministic (consumes no randomness), so one plan can be shared
        verbatim by every trial of a batch.
        """
        n, m = instance.n_jobs, instance.n_machines
        if self.explicit_chains is not None:
            chains = [list(map(int, c)) for c in self.explicit_chains]
        else:
            chains = extract_chains(instance.graph)

        relaxation = solve_lp2(instance, chains)
        assignment = round_lp2(relaxation, scale=self.scale)
        t_star = relaxation.t_star

        log_nm = max(1.0, math.log2(n + m))
        gamma = max(1, int(math.ceil(t_star / log_nm)))
        gamma_for_programs = gamma if self.enable_segments else None

        poly_cap = n * m
        unit = 1 if t_star <= poly_cap else int(math.ceil(t_star / poly_cap))

        programs = build_chain_programs(
            chains, assignment, gamma=gamma_for_programs, unit=unit
        )
        # Long (paused) jobs keep their rounded LP2 columns in the plan so
        # the inner="repeat" subroutine can replay them without a solve.
        x = assignment.x
        long_steps = []
        if gamma_for_programs is not None:
            for chain in chains:
                for j in chain:
                    if int(x[:, j].max()) > gamma_for_programs:
                        long_steps.append((
                            int(j),
                            tuple(
                                (int(i), int(x[i, j]))
                                for i in np.nonzero(x[:, j])[0]
                            ),
                        ))
        horizon = assignment.load
        loglog = math.log2(max(2.0, math.log2(max(4.0, float(n + m)))))
        congestion_limit = max(
            4.0, self.congestion_factor * math.log2(n + m) / max(1.0, loglog)
        )
        superstep_limit = self.length_factor * (
            t_star + horizon + gamma + n + m + 16.0
        )
        return _ChainPlan(
            chains=tuple(tuple(c) for c in chains),
            t_star=t_star,
            gamma=gamma,
            unit=unit,
            programs=tuple(programs),
            horizon=horizon,
            n_long_jobs=sum(
                1 for p in programs for it in p.items if isinstance(it, Pause)
            ),
            congestion_limit=congestion_limit,
            superstep_limit=superstep_limit,
            topo=tuple(instance.graph.topological_order()),
            long_steps=tuple(long_steps),
        )

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._rng = rng
        self._v2 = None
        plan = self._shared_plan
        if plan is None:
            plan = self.prepare_plan(instance)
        self._plan = plan
        self._programs = plan.programs
        self._gamma = plan.gamma
        self._unit = plan.unit
        self._congestion_limit = plan.congestion_limit
        self._superstep_limit = plan.superstep_limit
        self._topo = plan.topo

        delays = draw_delays(
            len(plan.chains), plan.horizon, rng, unit=plan.unit,
            enabled=self.enable_delays,
        )
        self._delays = delays

        self._chain_states = [_ChainState(items=p.items) for p in plan.programs]
        self._s = 0  # next superstep to build
        self._expansion: list[np.ndarray] = []
        self._exp_ptr = 0
        self._in_flight = False
        self._solo: deque[np.ndarray] = deque()
        self._pause_by_segment: dict[int, list[int]] = {}
        self._phase = "super"  # super | sem | fallback
        self._sem_policy: SUUISemPolicy | None = None
        self._sem_jobs: np.ndarray | None = None
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)

        self.stats = {
            "t_star": plan.t_star,
            "gamma": plan.gamma,
            "unit": plan.unit,
            "horizon": plan.horizon,
            "n_long_jobs": plan.n_long_jobs,
            "max_congestion": 0,
            "supersteps": 0,
            "sem_runs": 0,
            "fallback": False,
        }

    # ------------------------------------------------------------------
    # Chain bookkeeping helpers
    # ------------------------------------------------------------------
    def _enter_item(self, cs: _ChainState, deferred_pauses: list[int]) -> None:
        """Initialize the chain's current item after entering it."""
        if cs.done:
            return
        item = cs.item
        if isinstance(item, JobBlock):
            cs.tau = 0
            cs.entering = True
        else:
            cs.pause_left = item.length
            deferred_pauses.append(item.job)

    def _advance(self, cs: _ChainState, deferred_pauses: list[int]) -> None:
        cs.pos += 1
        self._enter_item(cs, deferred_pauses)

    def _register_pauses(self, jobs: list[int], superstep: int) -> None:
        if not jobs:
            return
        segment = superstep // self._gamma
        self._pause_by_segment.setdefault(segment, []).extend(jobs)

    def _enqueue_prelude(self, block: JobBlock) -> None:
        if block.prelude_length == 0:
            return
        self._solo.extend(
            prelude_rows(block, block.job, self._instance.n_machines)
        )

    # ------------------------------------------------------------------
    def _build_superstep(self, state: SimulationState) -> None:
        """Prepare the expansion (flattened rows) of superstep ``self._s``."""
        s = self._s
        m = self._instance.n_machines
        deferred: list[int] = []

        for cs, delay in zip(self._chain_states, self._delays):
            if not cs.started and delay <= s:
                cs.started = True
                self._enter_item(cs, deferred)
            # Re-check pauses that expired while their job was incomplete
            # (resolved by the segment-boundary SEM run).
            if (
                cs.started
                and not cs.done
                and isinstance(cs.item, Pause)
                and cs.pause_left == 0
                and not state.remaining[cs.item.job]
            ):
                self._advance(cs, deferred)
        self._register_pauses(deferred, s)

        per_machine: list[list[int]] = [[] for _ in range(m)]
        for cs in self._chain_states:
            if not (cs.started and not cs.done):
                continue
            item = cs.item
            if isinstance(item, Pause):
                continue
            if cs.entering:
                self._enqueue_prelude(item)
                cs.entering = False
            for i in item.machines_at(cs.tau):
                per_machine[i].append(item.job)

        congestion = max((len(lst) for lst in per_machine), default=0)
        self.stats["max_congestion"] = max(self.stats["max_congestion"], congestion)
        if self.enable_fallback and congestion > self._congestion_limit:
            self.stats["fallback"] = True
            self._phase = "fallback"
            return
        rows: list[np.ndarray] = []
        for r in range(congestion):
            row = self._idle.copy()
            for i in range(m):
                if r < len(per_machine[i]):
                    row[i] = per_machine[i][r]
            rows.append(row)
        self._expansion = rows
        self._exp_ptr = 0
        self._in_flight = True

    def _finish_superstep(self, state: SimulationState) -> None:
        """Advance chain cursors after superstep ``self._s`` fully executed."""
        deferred: list[int] = []
        for cs in self._chain_states:
            if not (cs.started and not cs.done):
                continue
            item = cs.item
            if isinstance(item, JobBlock):
                cs.tau += 1
                if cs.tau >= max(1, item.length):
                    if state.remaining[item.job]:
                        cs.tau = 0
                        cs.entering = True  # retry the block (re-insert prelude)
                    else:
                        self._advance(cs, deferred)
            else:
                if cs.pause_left > 0:
                    cs.pause_left -= 1
                if cs.pause_left == 0 and not state.remaining[item.job]:
                    self._advance(cs, deferred)
        self._s += 1
        self.stats["supersteps"] = self._s
        self._in_flight = False
        self._register_pauses(deferred, self._s)

        if self.enable_fallback and self._s > self._superstep_limit:
            self.stats["fallback"] = True
            self._phase = "fallback"
            return
        if self.enable_segments and self._s % self._gamma == 0:
            segment = self._s // self._gamma - 1
            pending = [
                j
                for j in self._pause_by_segment.pop(segment, [])
                if state.remaining[j]
            ]
            if pending:
                self._start_sem(pending)

    def _start_sem(self, jobs: list[int]) -> None:
        self._sem_jobs = np.array(sorted(jobs), dtype=np.int64)
        if self.inner == "sem":
            self._sem_policy = SUUISemPolicy(jobs=jobs, scale=self.scale)
        elif self.inner == "obl":
            from repro.core.suu_i_obl import SUUIOblPolicy

            self._sem_policy = SUUIOblPolicy(jobs=jobs, scale=self.scale)
        else:  # "repeat": re-run the plan's rounded LP2 columns, no solve
            self._sem_policy = RepeatingObliviousPolicy(
                long_repeat_schedule(
                    self._plan, self._sem_jobs, self._instance.n_machines,
                    self._instance.n_jobs,
                )
            )
        self._sem_policy.start(self._instance, self._rng.spawn(1)[0])
        self._phase = "sem"
        self.stats["sem_runs"] += 1

    def _fallback_assign(self, state: SimulationState) -> np.ndarray:
        for j in self._topo:
            if state.remaining[j] and state.eligible[j]:
                row = self._idle.copy()
                row[:] = j
                return row
        return self._idle

    # ------------------------------------------------------------------
    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        if self._phase == "fallback":
            return self._fallback_assign(state)

        # Internal machinery may advance through several zero-length
        # supersteps (all chains paused/delayed) before emitting a real
        # step; bound the loop so bugs surface as errors, not hangs.
        max_spins = int(self._superstep_limit) + self._gamma + 1_000
        for _ in range(max_spins):
            if self._solo:
                return self._solo.popleft()
            if self._phase == "fallback":
                return self._fallback_assign(state)
            if self._phase == "sem":
                if bool(state.remaining[self._sem_jobs].any()):
                    return self._sem_policy.assign(state)
                self._phase = "super"
                continue
            if self._in_flight:
                if self._exp_ptr < len(self._expansion):
                    row = self._expansion[self._exp_ptr]
                    self._exp_ptr += 1
                    return row
                self._finish_superstep(state)
                continue
            if all(cs.done for cs in self._chain_states):
                if state.remaining.any():
                    raise ReproError(
                        "SUU-C chains all finished but jobs remain; "
                        "inconsistent execution state"
                    )
                return self._idle
            self._build_superstep(state)
        raise ReproError(
            f"SUU-C made no progress after {max_spins} internal transitions"
        )

    # ------------------------------------------------------------------
    # Grouped batch dispatch (PhasedPolicy protocol)
    # ------------------------------------------------------------------
    def _clone(self) -> "SUUCPolicy":
        """A fresh, identically configured policy (one per trial replica)."""
        return SUUCPolicy(
            scale=self.scale,
            enable_delays=self.enable_delays,
            enable_segments=self.enable_segments,
            enable_fallback=self.enable_fallback,
            congestion_factor=self.congestion_factor,
            length_factor=self.length_factor,
            inner=self.inner,
            chains=self.explicit_chains,
        )

    def start_phased(self, instance, trial_rngs) -> None:
        # Discipline v1: SUU-C's assignments depend on per-trial random
        # chain delays drawn in the scalar order, so trials keep full
        # scalar replicas (ReplicaGroupedDispatch).  The batch win is
        # elsewhere: the LP2 solve / rounding / chain-program pipeline —
        # the bulk of start() — is computed once and shared, and the
        # engine steps all trials as arrays.  Each replica draws its
        # delays from its own trial generator, exactly like a scalar run,
        # and per-trial diagnostics live on `self._replicas[k].stats`.
        self._instance = instance
        self._v2 = None
        plan = self.prepare_plan(instance)
        replicas = []
        for trial_rng in trial_rngs:
            replica = self._clone()
            replica._shared_plan = plan
            replica.start(instance, trial_rng)
            replicas.append(replica)
        self._init_replica_dispatch(replicas)

    # ------------------------------------------------------------------
    # Discipline v2: array-based chain cursors (see core.chain_batch)
    # ------------------------------------------------------------------
    #: Under v2 the per-superstep expansions are shared by (delays,
    #: chain-position) signature — genuinely keyed grouping.
    phase_grouping_v2 = "keyed"

    def accepts_discipline_v2(self) -> bool:
        """Whether this configuration takes the v2 array-cursor path.

        Always True since the cursors gained prelude solo rows and
        obl/repeat inner cursors: every registered SUU-C configuration —
        preludes (``unit > 1``), ``inner="obl"``, ``inner="repeat"`` —
        runs batch-native, with no per-trial replica fallback.  Kept as a
        method because the service's fast-path routing consults it.
        """
        return True

    def _draw_v2_delays(
        self, streams, n_trials: int, plan: _ChainPlan, *key: int
    ) -> np.ndarray:
        """One ``(n_trials, n_chains)`` delay matrix from the v2 streams.

        Same distribution as v1's per-trial
        :func:`~repro.schedule.pseudo.draw_delays` (uniform over
        ``{0, Δ, ..., ⌊H/Δ⌋·Δ}``), drawn batch-wide.  ``key``
        distinguishes independent draws (SUU-T passes its block index).
        Split out so tests can inject v1-drawn delays and cross-check the
        array cursors bit-for-bit against the object cursors.
        """
        n_chains = len(plan.chains)
        if not self.enable_delays or plan.horizon <= 0:
            return np.zeros((n_trials, n_chains), dtype=np.int64)
        slots = plan.horizon // plan.unit + 1
        return streams.policy_integers(n_trials, n_chains, slots, *key) * plan.unit

    def start_phased_v2(self, instance, streams, n_trials: int) -> bool:
        plan = self.prepare_plan(instance)
        self._instance = instance
        delays = self._draw_v2_delays(streams, n_trials, plan)
        self._v2 = ChainCursorBatch(
            plan,
            instance,
            delays,
            n_machines=instance.n_machines,
            job_map=np.arange(instance.n_jobs, dtype=np.int64),
            n_engine_jobs=instance.n_jobs,
            scale=self.scale,
            inner=self.inner,
            enable_segments=self.enable_segments,
            enable_fallback=self.enable_fallback,
        )
        self.stats = self._v2.stats
        return True

    def begin_step(self, state) -> None:
        # Signature-grouped stepping: all live trials advance to their
        # next emitted row in one vectorized pass per engine step.
        if self._v2 is not None:
            self._v2.prepare_step(state, np.flatnonzero(state.active))

    def phase_key(self, trial: int, state):
        if self._v2 is not None:
            return self._v2.key_of(trial)
        return ReplicaGroupedDispatch.phase_key(self, trial, state)

    def assign_group(self, state, trials) -> np.ndarray:
        if self._v2 is not None:
            return self._v2.dispatch(self._v2.key_of(int(trials[0])), trials)
        return ReplicaGroupedDispatch.assign_group(self, state, trials)
