"""SUU-T: directed-forest precedence via chain blocks (Appendix B, Thm 12).

Decompose the forest into ``O(log n)`` blocks of vertex-disjoint chains
(:mod:`repro.instance.decomposition`), then run SUU-C once per block,
sequentially.  Sequential block execution is precedence-safe: every
predecessor of a job in block ``b`` lies in an earlier block or earlier in
the same chain, so while block ``b`` runs, chain-internal eligibility is
exactly true eligibility.

Each block is executed on a *sub-instance* (the block's jobs relabelled
``0..k-1`` with the chain edges), and the sub-policy's assignments are
translated back to global job ids.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.chain_batch import ChainCursorBatch
from repro.core.phased import ReplicaGroupedDispatch
from repro.core.rounding import PAPER_SCALE
from repro.core.suu_c import SUUCPolicy
from repro.errors import ReproError
from repro.instance.decomposition import decompose_forest
from repro.instance.instance import SUUInstance
from repro.instance.precedence import PrecedenceGraph
from repro.schedule.base import IDLE, PhasedPolicy, SimulationState

__all__ = ["SUUTPolicy"]


@register_policy(
    "suu-t", default_for=("out_forest", "in_forest", "mixed_forest")
)
class SUUTPolicy(ReplicaGroupedDispatch, PhasedPolicy):
    """Forest precedence: sequential SUU-C over heavy-path chain blocks.

    Parameters are forwarded to the per-block :class:`SUUCPolicy`.

    Attributes
    ----------
    stats:
        ``n_blocks`` plus the per-block SUU-C stats of the last execution.
    """

    name = "SUU-T"

    def __init__(self, scale: int = PAPER_SCALE, **suu_c_kwargs):
        self.scale = int(scale)
        self.suu_c_kwargs = dict(suu_c_kwargs)
        self.stats: dict = {}
        self._instance = None
        #: Per-block (sub-instance, chain plan) pairs precomputed by
        #: grouped dispatch so trial replicas skip per-block LP2 solves.
        self._shared_blocks: list | None = None
        #: Per-block array-cursor engines under discipline v2.
        self._v2_cursors: list[ChainCursorBatch] | None = None

    def start(self, instance, rng) -> None:
        self._instance = instance
        self._rng = rng
        self._v2_cursors = None
        blocks = decompose_forest(instance.graph)
        self._blocks = blocks
        self._block_idx = -1
        self._sub_policy: SUUCPolicy | None = None
        self._sub_jobs: np.ndarray | None = None
        self._idle = np.full(instance.n_machines, IDLE, dtype=np.int64)
        self._sub_t = 0
        self.stats = {"n_blocks": len(blocks), "blocks": []}

    def _block_sub_instance(self, b: int) -> tuple[SUUInstance, np.ndarray]:
        """The block's jobs relabelled ``0..k-1`` with their chain edges."""
        block = self._blocks[b]
        jobs = sorted(j for chain in block for j in chain)
        index = {j: k for k, j in enumerate(jobs)}
        edges = [
            (index[chain[k]], index[chain[k + 1]])
            for chain in block
            for k in range(len(chain) - 1)
        ]
        sub_q = self._instance.q[:, jobs]
        sub_inst = SUUInstance(sub_q, PrecedenceGraph(len(jobs), edges))
        return sub_inst, np.asarray(jobs, dtype=np.int64)

    def _start_block(self, b: int) -> None:
        """Build the block's sub-instance and a fresh SUU-C policy for it."""
        if self._shared_blocks is not None:
            sub_inst, jobs, plan = self._shared_blocks[b]
        else:
            sub_inst, jobs = self._block_sub_instance(b)
            plan = None
        policy = SUUCPolicy(scale=self.scale, **self.suu_c_kwargs)
        policy._shared_plan = plan
        policy.start(sub_inst, self._rng.spawn(1)[0])
        self._sub_policy = policy
        self._sub_instance = sub_inst
        self._sub_jobs = jobs
        self._sub_t = 0
        self._block_idx = b

    def _sub_state(self, state: SimulationState) -> SimulationState:
        """Project the global simulation state onto the block's jobs."""
        jobs = self._sub_jobs
        remaining = state.remaining[jobs]
        indeg = self._sub_instance.graph.in_degree_array()
        # Chain predecessors: eligible when the (unique) predecessor is done.
        eligible = remaining.copy()
        for u, v in self._sub_instance.graph.edges:
            if remaining[u]:
                eligible[v] = False
        del indeg
        return SimulationState(
            t=self._sub_t,
            remaining=remaining,
            eligible=eligible,
            mass_accrued=state.mass_accrued[jobs],
        )

    def assign(self, state: SimulationState) -> np.ndarray:
        if self._instance is None:
            raise RuntimeError("policy used before start()")
        # Advance to the first block with uncompleted jobs.
        while True:
            if self._sub_policy is not None and bool(
                state.remaining[self._sub_jobs].any()
            ):
                break
            if self._sub_policy is not None:
                self.stats["blocks"].append(dict(self._sub_policy.stats))
            nxt = self._block_idx + 1
            if nxt >= len(self._blocks):
                if state.remaining.any():
                    raise ReproError(
                        "SUU-T exhausted all blocks with jobs remaining"
                    )
                return self._idle
            self._start_block(nxt)

        sub_row = self._sub_policy.assign(self._sub_state(state))
        self._sub_t += 1
        row = self._idle.copy()
        active = sub_row >= 0
        row[active] = self._sub_jobs[sub_row[active]]
        return row

    # ------------------------------------------------------------------
    # Grouped batch dispatch (PhasedPolicy protocol)
    # ------------------------------------------------------------------
    def _shared_block_plans(self, instance) -> list:
        """Per-block ``(sub-instance, jobs, plan)`` triples, plan-cached."""
        self._blocks = decompose_forest(instance.graph)
        probe = SUUCPolicy(scale=self.scale, **self.suu_c_kwargs)
        shared = []
        for b in range(len(self._blocks)):
            sub_inst, jobs = self._block_sub_instance(b)
            shared.append((sub_inst, jobs, probe.prepare_plan(sub_inst)))
        return shared

    def start_phased(self, instance, trial_rngs) -> None:
        # Discipline v1: like SUU-C, assignments depend on per-trial chain
        # delays drawn in the scalar order, so trials keep scalar replicas
        # (ReplicaGroupedDispatch).  The shared work is per-block — every
        # trial walks the same block sequence, so the block sub-instances
        # and their LP2 solves / rounded chain programs are computed once
        # here instead of once per (trial, block).  Each replica still
        # spawns its own rng child per block entered, in the scalar order,
        # to keep delay streams bit-identical to per-trial runs.
        self._instance = instance
        self._v2_cursors = None
        shared = self._shared_block_plans(instance)
        replicas = []
        for trial_rng in trial_rngs:
            replica = SUUTPolicy(scale=self.scale, **self.suu_c_kwargs)
            replica.start(instance, trial_rng)
            replica._shared_blocks = shared
            replicas.append(replica)
        self._init_replica_dispatch(replicas)

    # ------------------------------------------------------------------
    # Discipline v2: per-block array cursors (see core.chain_batch)
    # ------------------------------------------------------------------
    phase_grouping_v2 = "keyed"

    def accepts_discipline_v2(self) -> bool:
        """Config-level v2 acceptance (see :meth:`SUUCPolicy.accepts_discipline_v2`).

        Always True: prelude plans and obl/repeat inner subroutines run on
        the per-block array cursors like everything else.
        """
        return True

    def start_phased_v2(self, instance, streams, n_trials: int) -> bool:
        probe = SUUCPolicy(scale=self.scale, **self.suu_c_kwargs)
        self._instance = instance
        shared = self._shared_block_plans(instance)
        cursors = []
        for b, (sub_inst, jobs, plan) in enumerate(shared):
            # Block delays are pre-drawn for every trial (v1 draws them on
            # block entry; the joint distribution is identical since all
            # draws are independent), keyed by block index.
            delays = self._draw_block_delays(streams, n_trials, plan, b, probe)
            cursors.append(
                ChainCursorBatch(
                    plan,
                    sub_inst,
                    delays,
                    n_machines=instance.n_machines,
                    job_map=jobs,
                    n_engine_jobs=instance.n_jobs,
                    scale=self.scale,
                    inner=probe.inner,
                    enable_segments=probe.enable_segments,
                    enable_fallback=probe.enable_fallback,
                )
            )
        self._v2_cursors = cursors
        self._v2_block = np.zeros(n_trials, dtype=np.int64)
        self._block_job_arrays = [jobs for _, jobs, _ in shared]
        self.stats = {"n_blocks": len(shared), "blocks": [c.stats for c in cursors]}
        return True

    def _draw_block_delays(self, streams, n_trials, plan, block: int, probe):
        """Block ``block``'s ``(n_trials, n_chains)`` delay matrix.

        Delegates to SUU-C's draw (one distribution, one implementation),
        keyed by block.  Override point for the cursor cross-check tests.
        """
        return probe._draw_v2_delays(streams, n_trials, plan, block)

    def begin_step(self, state) -> None:
        """Per-step vectorized block advance + signature-grouped stepping.

        One pass computes every trial's current block (the first block, at
        or past its last one, that still has live jobs) and hands each
        block's member trials to its cursor's :meth:`~repro.core.
        chain_batch.ChainCursorBatch.prepare_step`.
        """
        if self._v2_cursors is None:
            return
        alive = np.stack(
            [
                state.remaining[:, jobs].any(axis=1)
                for jobs in self._block_job_arrays
            ]
        )
        n_blocks = alive.shape[0]
        allowed = alive & (
            np.arange(n_blocks, dtype=np.int64)[:, None]
            >= self._v2_block[None, :]
        )
        active = np.asarray(state.active)
        if bool((active & ~allowed.any(axis=0)).any()):
            raise ReproError("SUU-T exhausted all blocks with jobs remaining")
        self._v2_block = np.where(
            active, np.argmax(allowed, axis=0), self._v2_block
        )
        for b, cursor in enumerate(self._v2_cursors):
            members = np.flatnonzero(active & (self._v2_block == b))
            if members.size:
                cursor.prepare_step(state, members)

    def phase_key(self, trial: int, state):
        if self._v2_cursors is None:
            return ReplicaGroupedDispatch.phase_key(self, trial, state)
        blk = int(self._v2_block[trial])
        return (blk,) + self._v2_cursors[blk].key_of(trial)

    def assign_group(self, state, trials) -> np.ndarray:
        if self._v2_cursors is None:
            return ReplicaGroupedDispatch.assign_group(self, state, trials)
        blk = int(self._v2_block[int(trials[0])])
        cursor = self._v2_cursors[blk]
        return cursor.dispatch(cursor.key_of(int(trials[0])), trials)
