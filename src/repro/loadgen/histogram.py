"""An HdrHistogram-style latency recorder.

Like wrk2's recorder (and the HdrHistogram it embeds), latencies are
counted into buckets whose width grows geometrically, so the histogram
covers microseconds-to-minutes with a fixed small memory footprint and a
bounded *relative* quantile error — the property that matters for tail
percentiles, where a fixed-width histogram either wastes buckets or
saturates.  Recording is O(1) (one log, one increment), quantile reads
walk the cumulative counts, and two histograms merge by adding counts —
which is how per-connection recorders roll up into one report.

This is deliberately not a full HdrHistogram (no two-level
bucket/sub-bucket layout, no auto-resize): geometric buckets at ~1%
relative precision are enough for p50/p90/p99/p99.9 columns, and the
implementation stays small enough to audit.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-memory latency histogram with bounded relative error.

    Parameters
    ----------
    min_value / max_value:
        Trackable range in seconds.  Values below ``min_value`` land in
        the first bucket; values above ``max_value`` saturate into the
        last (and are reported via the exact :attr:`max`).
    precision:
        Geometric bucket growth factor; ``1.01`` bounds the relative
        quantile error at about 1%.
    """

    def __init__(self, min_value: float = 1e-6, max_value: float = 300.0,
                 precision: float = 1.01):
        if not (0 < min_value < max_value):
            raise ValueError("need 0 < min_value < max_value")
        if precision <= 1.0:
            raise ValueError("precision must be > 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.precision = float(precision)
        self._log_precision = math.log(precision)
        n_buckets = int(math.log(max_value / min_value) / self._log_precision) + 2
        self._counts = np.zeros(n_buckets, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        i = int(math.log(value / self.min_value) / self._log_precision) + 1
        return min(i, len(self._counts) - 1)

    def record(self, seconds: float) -> None:
        """Count one latency observation."""
        if seconds < 0:
            raise ValueError(f"negative latency: {seconds}")
        self._counts[self._index(seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if seconds < self.min:
            self.min = seconds

    @property
    def mean(self) -> float:
        """Exact mean of everything recorded (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The latency at quantile ``p`` (in percent, e.g. ``99.9``).

        Returns the geometric midpoint of the bucket holding the
        quantile (so the relative error is bounded by ``precision``),
        clamped to the exactly-tracked min/max.  0.0 when empty.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(p / 100.0 * self.count)
        cumulative = np.cumsum(self._counts)
        i = int(np.searchsorted(cumulative, max(rank, 1)))
        if i == 0:
            value = self.min_value
        else:
            value = self.min_value * self.precision ** (i - 0.5)
        return min(max(value, self.min), self.max)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s counts into this histogram (same geometry)."""
        if (other.min_value, other.max_value, other.precision) != (
            self.min_value, self.max_value, self.precision
        ):
            raise ValueError("cannot merge histograms with different geometry")
        self._counts += other._counts
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        self.min = min(self.min, other.min)

    def summary(self) -> dict:
        """The standard latency columns as a JSON-ready dict (seconds)."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "p999": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, p50={self.p50 * 1e3:.1f}ms, "
            f"p99={self.p99 * 1e3:.1f}ms, max={self.max * 1e3:.1f}ms)"
        )
