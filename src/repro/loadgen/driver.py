"""A wrk2-style open-loop constant-throughput load driver.

The driver schedules request *arrivals* on a fixed timeline — request
``i`` of a ``rate`` req/s run is due at exactly ``t0 + i/rate`` —
and measures each request's latency **from its scheduled arrival time**,
not from when the socket write happened to start.  That is the defining
wrk2 discipline: a closed-loop driver (fire, wait, fire) silently stops
offering load while the server stalls, so the stall never shows up in
the recorded latencies ("coordinated omission"); an open-loop driver
keeps the timeline, and any backlog the stall caused is charged to every
queued request's latency.  Concretely:

* arrivals never wait for in-flight requests — each one gets its own
  task and, when no idle keep-alive connection is available, its own
  fresh connection (the connection pool only *reuses*, it never blocks);
* if the driver itself falls behind the timeline (event-loop stall,
  connection churn), the late request's latency still starts at its
  scheduled time, so driver-side delay is counted, not hidden.

Latencies land in a :class:`~repro.loadgen.histogram.LatencyHistogram`
(HdrHistogram-style), and :class:`LoadReport` carries the standard
columns: offered vs completed throughput, error counts by status, and
p50/p90/p99/p99.9/max.

The HTTP client is stdlib ``asyncio`` streams (HTTP/1.1 keep-alive,
``Content-Length`` framing) — the same minimal dialect the server
speaks, with no framework on either side of the measurement.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from dataclasses import dataclass, field

from repro.loadgen.histogram import LatencyHistogram

__all__ = [
    "RequestSpec",
    "LoadReport",
    "run_open_loop",
    "run_load",
    "default_simulate_spec",
    "format_report",
]


@dataclass(frozen=True)
class RequestSpec:
    """One HTTP request shape, fired repeatedly by the driver."""

    method: str = "GET"
    path: str = "/healthz"
    body: bytes | None = None
    content_type: str = "application/json"

    @classmethod
    def json(cls, method: str, path: str, payload: dict) -> "RequestSpec":
        """A JSON-bodied request spec."""
        return cls(method=method, path=path,
                   body=json.dumps(payload).encode())


def default_simulate_spec(n_jobs: int = 12, n_machines: int = 4,
                          n_trials: int = 24, seed: int = 0) -> RequestSpec:
    """The stock load-test request: a small ``POST /simulate``.

    Small enough that a laptop sustains hundreds of them per second,
    real enough that each one exercises the full scenario → instance →
    batch-kernel → report path.
    """
    return RequestSpec.json("POST", "/simulate", {
        "scenario": {"shape": "independent", "n_jobs": n_jobs,
                     "n_machines": n_machines, "model": "specialist",
                     "seed": seed},
        "policy": "greedy",
        "config": {"n_trials": n_trials, "seed": seed},
    })


@dataclass
class LoadReport:
    """Outcome of one constant-rate run.

    ``offered`` counts scheduled arrivals (always ``rate × duration``;
    the open loop never sheds load), ``completed`` the 2xx responses.
    Latency statistics cover *completed* requests; errors are counted
    per status (transport failures under ``"error"``, timeouts under
    ``"timeout"``) but never recorded as latencies.
    """

    target_rps: float
    duration: float
    offered: int = 0
    completed: int = 0
    errors: int = 0
    status_counts: dict = field(default_factory=dict)
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    elapsed: float = 0.0
    max_in_flight: int = 0
    started_at: float = 0.0  # wall-clock, stamped by the caller's clock

    @property
    def achieved_rps(self) -> float:
        """Completed requests per second of actual elapsed run time."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.offered if self.offered else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary (what lands in BENCH_6 extra_info)."""
        return {
            "target_rps": self.target_rps,
            "achieved_rps": self.achieved_rps,
            "duration": self.duration,
            "elapsed": self.elapsed,
            "offered": self.offered,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "status_counts": dict(self.status_counts),
            "max_in_flight": self.max_in_flight,
            "latency": self.histogram.summary(),
        }


class _ConnectionPool:
    """Reusable keep-alive connections to one host:port.

    ``acquire`` never waits: it pops an idle connection or opens a new
    one, so the pool can only *reduce* per-request cost — it cannot
    throttle the open loop into a closed one.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._idle: list[tuple] = []
        self.opened = 0

    async def acquire(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        self.opened += 1
        return await asyncio.open_connection(self.host, self.port)

    def release(self, conn, reusable: bool) -> None:
        reader, writer = conn
        if reusable and not writer.is_closing():
            self._idle.append(conn)
        else:
            writer.close()

    def close(self) -> None:
        for _reader, writer in self._idle:
            writer.close()
        self._idle.clear()


async def _request(pool: _ConnectionPool, spec: RequestSpec) -> int:
    """Fire one request over a pooled connection; returns the status."""
    conn = await pool.acquire()
    reader, writer = conn
    ok_to_reuse = False
    try:
        body = spec.body or b""
        head = (
            f"{spec.method} {spec.path} HTTP/1.1\r\n"
            f"Host: {pool.host}:{pool.port}\r\n"
            f"Content-Type: {spec.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if length:
            await reader.readexactly(length)
        ok_to_reuse = headers.get("connection", "keep-alive").lower() != "close"
        return status
    finally:
        pool.release(conn, ok_to_reuse)


async def run_open_loop(host: str, port: int, spec: RequestSpec, *,
                        rps: float, duration: float,
                        timeout: float = 30.0) -> LoadReport:
    """Drive ``spec`` at a constant ``rps`` for ``duration`` seconds.

    Open loop with latency measured from scheduled arrival — see the
    module docstring for why that combination is what makes the recorded
    tail honest.
    """
    if rps <= 0 or duration <= 0:
        raise ValueError("rps and duration must be positive")
    loop = asyncio.get_running_loop()
    report = LoadReport(target_rps=rps, duration=duration,
                        started_at=time.time())
    pool = _ConnectionPool(host, port)
    in_flight = 0

    async def fire(scheduled: float) -> None:
        nonlocal in_flight
        in_flight += 1
        report.max_in_flight = max(report.max_in_flight, in_flight)
        try:
            status = await asyncio.wait_for(_request(pool, spec), timeout)
            latency = loop.time() - scheduled
            key = str(status)
            report.status_counts[key] = report.status_counts.get(key, 0) + 1
            if 200 <= status < 300:
                report.completed += 1
                report.histogram.record(latency)
            else:
                report.errors += 1
        except asyncio.TimeoutError:
            report.errors += 1
            report.status_counts["timeout"] = (
                report.status_counts.get("timeout", 0) + 1
            )
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            report.errors += 1
            report.status_counts["error"] = (
                report.status_counts.get("error", 0) + 1
            )
        finally:
            in_flight -= 1

    n_requests = max(1, round(rps * duration))
    t0 = loop.time()
    tasks = []
    for i in range(n_requests):
        scheduled = t0 + i / rps
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        # Late arrivals fire immediately; their latency clock already
        # started at `scheduled`, so the slip is charged, not dropped.
        report.offered += 1
        tasks.append(asyncio.ensure_future(fire(scheduled)))
    await asyncio.gather(*tasks)
    report.elapsed = loop.time() - t0
    pool.close()
    return report


def run_load(url: str, spec: RequestSpec | None = None, *,
             rps: float = 10.0, duration: float = 5.0,
             timeout: float = 30.0) -> LoadReport:
    """Synchronous entry point: ``url`` names the server (http://host:port).

    ``spec`` defaults to :func:`default_simulate_spec`.
    """
    parts = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// targets are supported, got {url!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    spec = spec or default_simulate_spec()
    return asyncio.run(
        run_open_loop(host, port, spec, rps=rps, duration=duration,
                      timeout=timeout)
    )


def format_report(report: LoadReport) -> str:
    """A wrk2-flavored text summary of one run."""
    s = report.histogram.summary()
    lines = [
        f"open-loop run: {report.target_rps:g} req/s for "
        f"{report.duration:g}s ({report.offered} requests offered)",
        f"  completed {report.completed} "
        f"({report.achieved_rps:.1f} req/s achieved), "
        f"errors {report.errors} ({report.error_rate:.1%}), "
        f"max in-flight {report.max_in_flight}",
        "  latency (from scheduled arrival):",
        f"    mean {s['mean'] * 1e3:8.2f} ms",
        f"    p50  {s['p50'] * 1e3:8.2f} ms",
        f"    p90  {s['p90'] * 1e3:8.2f} ms",
        f"    p99  {s['p99'] * 1e3:8.2f} ms",
        f"    p99.9{s['p999'] * 1e3:8.2f} ms",
        f"    max  {s['max'] * 1e3:8.2f} ms",
    ]
    if report.status_counts:
        counts = ", ".join(
            f"{k}: {v}" for k, v in sorted(report.status_counts.items())
        )
        lines.append(f"  responses by status: {counts}")
    return "\n".join(lines)
