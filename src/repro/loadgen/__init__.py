"""``repro.loadgen`` — constant-throughput load generation and latency
recording for the request server.

Modeled on the wrk2 discipline (see AIOpsLab's workload harness): an
**open-loop** driver schedules request arrivals on a fixed timeline so a
stalling server cannot slow the offered load down (that would hide its
own stall — "coordinated omission"), and an **HdrHistogram-style**
recorder keeps p50/p90/p99/p99.9/max with bounded relative error at
fixed memory.

Quick start::

    from repro.loadgen import run_load, format_report

    report = run_load("http://127.0.0.1:8075", rps=50, duration=10)
    print(format_report(report))

or from a shell: ``repro loadgen --rps 50 --duration 10``.
"""

from repro.loadgen.driver import (
    LoadReport,
    RequestSpec,
    default_simulate_spec,
    format_report,
    run_load,
    run_open_loop,
)
from repro.loadgen.histogram import LatencyHistogram

__all__ = [
    "LatencyHistogram",
    "RequestSpec",
    "LoadReport",
    "run_open_loop",
    "run_load",
    "default_simulate_spec",
    "format_report",
]
