"""Provable lower bounds on ``E[T_OPT]``.

At evaluation scale the exact DP is unavailable (NP-hard), so empirical
approximation ratios are measured against the best of several *provable*
lower bounds.  Using a lower bound in the denominator only over-states the
measured ratio, so the comparisons remain sound (the measured "ratio" is an
upper bound on the true one; EXPERIMENTS.md states this).

Bounds implemented:

* **LP1 bound** (Lemma 1's proof, applied to the relaxation):
  ``E[T_OPT] >= t*_LP1(J, 1/2) / 2``.  For the uniformly random subset
  ``U = {j : r_j < 1/2}``, the optimal schedule's realized allocation is
  feasible for ``LP1(U, 1/2)``, and LP values are subadditive over
  complementary subsets.
* **LP2 bound** (same argument with (LP2)'s extra constraints; chains
  only): ``E[T_OPT] >= t*_LP2 / 2``.  Every job runs at least one step in
  any execution, so the realized ``d_j >= 1`` and chain-length constraints
  hold for the optimal schedule's allocation.
* **Hardest-single-job bound**: job ``j`` cannot finish faster than a
  geometric with success ``1 - prod_i q_ij`` (all machines every step), so
  ``E[T_OPT] >= max_j 1 / (1 - prod_i q_ij)``.
* **Critical-path bound**: along any precedence path the jobs run in
  disjoint time intervals, each at least its geometric above, so
  ``E[T_OPT] >= max over paths of the path's sum of geometric means``.
"""

from __future__ import annotations

import numpy as np

from repro.core.lp1 import solve_lp1
from repro.core.lp2 import solve_lp2
from repro.instance.chains import extract_chains
from repro.instance.instance import SUUInstance
from repro.instance.precedence import PrecedenceClass

__all__ = [
    "lp1_lower_bound",
    "lp2_lower_bound",
    "single_job_lower_bound",
    "critical_path_lower_bound",
    "lower_bound",
]


def lp1_lower_bound(instance: SUUInstance) -> float:
    """``t*_LP1(J, 1/2) / 2`` (valid for every precedence structure)."""
    return solve_lp1(instance, target=0.5).t_star / 2.0


def lp2_lower_bound(instance: SUUInstance) -> float:
    """``t*_LP2 / 2`` — sharper than LP1 when chains are long (chains only)."""
    chains = extract_chains(instance.graph)
    return solve_lp2(instance, chains).t_star / 2.0


def _geometric_means(instance: SUUInstance) -> np.ndarray:
    """Per-job ``1 / (1 - prod_i q_ij)``: expected steps with all machines."""
    p = instance.best_single_step_success()
    return 1.0 / p


def single_job_lower_bound(instance: SUUInstance) -> float:
    """``max_j`` expected geometric completion time with every machine."""
    return float(_geometric_means(instance).max())


def critical_path_lower_bound(instance: SUUInstance) -> float:
    """Longest precedence path weighted by per-job geometric means."""
    w = _geometric_means(instance)
    best = np.array(w, dtype=np.float64)  # best[j] = heaviest path ending at j
    for v in instance.graph.topological_order():
        for s in instance.graph.successors(v):
            cand = best[v] + w[s]
            if cand > best[s]:
                best[s] = cand
    return float(best.max())


def lower_bound(instance: SUUInstance) -> float:
    """Best applicable lower bound on ``E[T_OPT]`` (always >= 1)."""
    candidates = [1.0, lp1_lower_bound(instance), critical_path_lower_bound(instance)]
    if instance.precedence_class in (
        PrecedenceClass.CHAINS,
        PrecedenceClass.INDEPENDENT,
    ):
        if instance.graph.n_edges:
            candidates.append(lp2_lower_bound(instance))
    return float(max(candidates))
