"""Plain-text table rendering for the experiment harness.

The benchmark suite prints the same rows EXPERIMENTS.md records; a tiny
fixed-width renderer keeps that output dependency-free and diff-friendly.
"""

from __future__ import annotations

__all__ = ["format_table", "format_markdown_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers, rows, *, title: str | None = None) -> str:
    """Fixed-width text table.

    ``rows`` is an iterable of sequences matching ``headers`` in length;
    floats are rendered with three decimals.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown_table(headers, rows) -> str:
    """GitHub-flavoured markdown table (used to regenerate EXPERIMENTS.md)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for r in str_rows:
        lines.append("| " + " | ".join(r) + " |")
    return "\n".join(lines)
