"""Measurement utilities: lower bounds, ratios, and table rendering."""

from repro.analysis.bounds import (
    critical_path_lower_bound,
    lower_bound,
    lp1_lower_bound,
    lp2_lower_bound,
    single_job_lower_bound,
)
from repro.analysis.perjob import PerJobStats, per_job_stats
from repro.analysis.ratios import RatioMeasurement, measure_ratio
from repro.analysis.tables import format_markdown_table, format_table

__all__ = [
    "PerJobStats",
    "per_job_stats",
    "lower_bound",
    "lp1_lower_bound",
    "lp2_lower_bound",
    "single_job_lower_bound",
    "critical_path_lower_bound",
    "RatioMeasurement",
    "measure_ratio",
    "format_table",
    "format_markdown_table",
]
