"""Per-job completion-time statistics across Monte Carlo trials.

:class:`~repro.sim.batch.BatchSimResult` carries the full
``(n_trials, n_jobs)`` completion matrix, but the summary layer only ever
reduced it to makespans.  This module exploits the matrix: per-job mean
completion steps, tail-latency quantiles, and "which jobs dominate the
makespan" attribution — the questions a capacity planner asks of a
scheduler, not just the approximation-ratio question the paper asks.

Build one with :func:`per_job_stats` from a batch result (or a raw
completion matrix), or ask :func:`repro.api.simulate` for it directly
with ``per_job=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PerJobStats", "per_job_stats"]


@dataclass(frozen=True)
class PerJobStats:
    """Completion-time distribution of every job across trials.

    Attributes
    ----------
    completion_times:
        Shape ``(n_trials, n_jobs)``, 1-based completion steps (the same
        convention as :class:`~repro.sim.results.SimResult`).
    policy_name:
        Label of the policy that produced the executions.
    """

    completion_times: np.ndarray
    policy_name: str = "policy"

    def __post_init__(self):
        ct = np.asarray(self.completion_times)
        if ct.ndim != 2:
            raise ValueError(
                f"completion_times must be 2-D (trials, jobs), got {ct.shape}"
            )

    @property
    def n_trials(self) -> int:
        """Number of Monte Carlo trials."""
        return int(self.completion_times.shape[0])

    @property
    def n_jobs(self) -> int:
        """Number of jobs per trial."""
        return int(self.completion_times.shape[1])

    @property
    def mean(self) -> np.ndarray:
        """Per-job mean completion step, shape ``(n_jobs,)``."""
        return self.completion_times.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        """Per-job ``q``-quantile of the completion step, shape ``(n_jobs,)``.

        ``quantile(0.99)`` is the per-job p99 tail latency (in unit steps).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        return np.quantile(self.completion_times, q, axis=0)

    def tail_latency(self, q: float = 0.99) -> np.ndarray:
        """Alias for :meth:`quantile` with tail-latency framing."""
        return self.quantile(q)

    @property
    def critical_fraction(self) -> np.ndarray:
        """Fraction of trials in which each job finished *last*.

        Ties split the credit across the tied jobs, so the fractions sum
        to 1: this is makespan attribution — which jobs the policy should
        work on to shrink ``E[T]``.
        """
        ct = self.completion_times
        is_max = ct == ct.max(axis=1, keepdims=True)
        weights = is_max / is_max.sum(axis=1, keepdims=True)
        return weights.mean(axis=0)

    def slowest_jobs(self, k: int = 5, q: float = 0.9) -> list[tuple[int, float]]:
        """The ``k`` jobs with the largest ``q``-quantile completion step.

        Returns ``(job id, quantile value)`` pairs, slowest first.
        """
        values = self.quantile(q)
        order = np.argsort(values)[::-1][: max(0, int(k))]
        return [(int(j), float(values[j])) for j in order]

    def to_dict(self, quantiles=(0.5, 0.9, 0.99)) -> dict:
        """JSON-compatible summary (no raw matrix; means and quantiles)."""
        return {
            "policy": self.policy_name,
            "n_trials": self.n_trials,
            "n_jobs": self.n_jobs,
            "mean": self.mean.tolist(),
            "quantiles": {
                str(q): self.quantile(q).tolist() for q in quantiles
            },
            "critical_fraction": self.critical_fraction.tolist(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PerJobStats({self.policy_name}: {self.n_jobs} jobs x "
            f"{self.n_trials} trials, worst p99={self.quantile(0.99).max():.1f})"
        )


def per_job_stats(source, policy_name: str | None = None) -> PerJobStats:
    """Build :class:`PerJobStats` from a batch result or completion matrix.

    Parameters
    ----------
    source:
        A :class:`~repro.sim.batch.BatchSimResult` (its
        ``completion_times`` and ``policy_name`` are used) or any
        ``(n_trials, n_jobs)`` array of completion steps.
    policy_name:
        Label override (defaults to the result's name, or ``"policy"``).
    """
    matrix = getattr(source, "completion_times", source)
    label = policy_name or getattr(source, "policy_name", None) or "policy"
    return PerJobStats(
        completion_times=np.asarray(matrix), policy_name=str(label)
    )
