"""Empirical approximation-ratio measurement."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import lower_bound
from repro.instance.instance import SUUInstance
from repro.sim.engine import DEFAULT_MAX_STEPS
from repro.sim.montecarlo import estimate_expected_makespan
from repro.sim.results import MakespanStats

__all__ = ["RatioMeasurement", "measure_ratio"]


@dataclass(frozen=True)
class RatioMeasurement:
    """A policy's measured performance on one instance.

    Attributes
    ----------
    ratio:
        ``mean makespan / lower bound`` — an *upper* estimate of the true
        approximation ratio (the denominator is a lower bound on
        ``E[T_OPT]``, not ``E[T_OPT]`` itself).
    """

    policy_name: str
    stats: MakespanStats
    bound: float

    @property
    def ratio(self) -> float:
        return self.stats.mean / self.bound

    @property
    def ratio_ci95(self) -> tuple[float, float]:
        lo, hi = self.stats.ci95
        return (lo / self.bound, hi / self.bound)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatioMeasurement({self.policy_name}: ratio={self.ratio:.3f}, "
            f"E[T]={self.stats.mean:.2f}, LB={self.bound:.2f})"
        )


def measure_ratio(
    instance: SUUInstance,
    policy_factory,
    n_trials: int,
    rng=None,
    *,
    bound: float | None = None,
    semantics: str = "suu",
    max_steps: int = DEFAULT_MAX_STEPS,
    discipline: str | None = None,
) -> RatioMeasurement:
    """Estimate a policy's approximation ratio against the lower bound.

    ``bound`` may be precomputed (it is instance-only, so callers comparing
    several policies on the same instance should share it).  ``discipline``
    selects the RNG discipline of the underlying Monte Carlo estimate
    (``None``: environment default) — the ablation benchmarks pass
    ``"v2"`` so their grids run batch-native.
    """
    if bound is None:
        bound = lower_bound(instance)
    stats = estimate_expected_makespan(
        instance,
        policy_factory,
        n_trials,
        rng,
        semantics=semantics,
        max_steps=max_steps,
        discipline=discipline,
    )
    return RatioMeasurement(policy_name=stats.policy_name, stats=stats, bound=bound)
