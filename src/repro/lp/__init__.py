"""LP substrate: sparse model builder and solver wrapper."""

from repro.lp.model import LinearProgram
from repro.lp.solver import LPSolution, solve_lp

__all__ = ["LinearProgram", "LPSolution", "solve_lp"]
