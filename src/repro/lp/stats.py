"""Process-wide LP-wall counters: where solver time actually goes.

The ROADMAP's "collapse the LP wall" work needs the wall to be
*observable*: how many LPs HiGHS really solved, how long pure-Python /
numpy model assembly took before HiGHS ever ran, and how often the
survivor-set reuse and coalescing machinery (:mod:`repro.core.phased`)
turned a would-be solve into a derivation or a batched miss.  This module
holds those counters in one process-wide, thread-safe object:

* ``lp_solves`` — calls into the HiGHS backend (:func:`repro.lp.solver.
  solve_lp`).  The ground truth for "distinct LP solves": caches and
  reuse modes reduce *this* number, never just their own hit counters.
* ``assembly_seconds`` — wall-clock spent in
  :meth:`repro.lp.model.LinearProgram.build_arrays` turning accumulated
  rows into the CSR matrices HiGHS consumes.
* ``reuse_hits`` — schedules derived by survivor-set *subset reuse*
  (``lp_reuse="subset"``) instead of a fresh solve.
* ``coalesced_batches`` / ``coalesced_solves`` — lock-step boundaries at
  which multiple distinct survivor-set misses were solved together, and
  how many solves those batches covered.

Thread safety matters because coalesced solving runs HiGHS on a small
thread pool (scipy releases the GIL); the counters are the only mutable
state those threads share.

The counters are cumulative per process.  Callers that want per-run
attribution snapshot before and diff after (:meth:`LPWallStats.snapshot`
/ :func:`lp_stats_delta`) — that is how :func:`repro.api.simulate`
reports per-request LP stats, including from pool workers (each worker
diffs its own counters around its chunk).
"""

from __future__ import annotations

import threading

__all__ = ["LPWallStats", "LP_STATS", "lp_stats_snapshot", "lp_stats_delta", "reset_lp_stats"]

#: The counter fields, in reporting order.
FIELDS = (
    "lp_solves",
    "assembly_seconds",
    "reuse_hits",
    "coalesced_batches",
    "coalesced_solves",
)


class LPWallStats:
    """Thread-safe additive counters (see module docstring for fields)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.lp_solves = 0
        self.assembly_seconds = 0.0
        self.reuse_hits = 0
        self.coalesced_batches = 0
        self.coalesced_solves = 0

    def add(self, field: str, amount=1) -> None:
        """Atomically add ``amount`` to ``field``."""
        if field not in FIELDS:
            raise ValueError(f"unknown LP stats field {field!r}")
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def snapshot(self) -> dict:
        """A consistent copy of every counter."""
        with self._lock:
            return {name: getattr(self, name) for name in FIELDS}

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        with self._lock:
            self.lp_solves = 0
            self.assembly_seconds = 0.0
            self.reuse_hits = 0
            self.coalesced_batches = 0
            self.coalesced_solves = 0


#: The process-wide instance every LP layer component reports into.
LP_STATS = LPWallStats()


def lp_stats_snapshot() -> dict:
    """Snapshot of the process-wide counters (picklable, pool-submittable)."""
    return LP_STATS.snapshot()


def lp_stats_delta(before: dict, after: dict | None = None) -> dict:
    """Per-run attribution: ``after - before`` field by field.

    ``after`` defaults to a fresh snapshot, so the usual pattern is
    ``before = lp_stats_snapshot(); ...work...; delta = lp_stats_delta(before)``.
    """
    if after is None:
        after = lp_stats_snapshot()
    return {name: after[name] - before[name] for name in FIELDS}


def reset_lp_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    LP_STATS.reset()
