"""Incremental sparse LP builder.

Both LP1 and LP2 are built column-by-column over ``(machine, job)`` pairs;
this builder accumulates sparse inequality rows and hands a CSR matrix to
the solver.  It intentionally supports only what the paper's programs need:
minimization, ``<=`` / ``>=`` / ``==`` rows, and per-variable bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.lp.solver import LPSolution, solve_lp

__all__ = ["LinearProgram"]


@dataclass
class LinearProgram:
    """A minimization LP assembled incrementally.

    Usage::

        lp = LinearProgram()
        x = lp.add_variable(objective=0.0, lb=0.0)
        t = lp.add_variable(objective=1.0, lb=0.0)
        lp.add_ge({x: 2.0}, 1.0)        # 2 x >= 1
        lp.add_le({x: 1.0, t: -1.0}, 0)  # x <= t
        sol = lp.solve()
    """

    _objective: list[float] = field(default_factory=list)
    _lb: list[float] = field(default_factory=list)
    _ub: list[float] = field(default_factory=list)
    _rows: list[dict[int, float]] = field(default_factory=list)
    _rhs: list[float] = field(default_factory=list)
    _senses: list[str] = field(default_factory=list)

    @property
    def n_variables(self) -> int:
        """Number of variables added so far."""
        return len(self._objective)

    @property
    def n_constraints(self) -> int:
        """Number of constraint rows added so far."""
        return len(self._rows)

    def add_variable(
        self, objective: float = 0.0, lb: float = 0.0, ub: float | None = None
    ) -> int:
        """Add a variable; returns its column index."""
        if ub is not None and ub < lb:
            raise ValueError(f"upper bound {ub} below lower bound {lb}")
        self._objective.append(float(objective))
        self._lb.append(float(lb))
        self._ub.append(np.inf if ub is None else float(ub))
        return len(self._objective) - 1

    def add_variables(
        self, count: int, objective: float = 0.0, lb: float = 0.0, ub: float | None = None
    ) -> list[int]:
        """Add ``count`` identical variables; returns their column indices."""
        return [self.add_variable(objective, lb, ub) for _ in range(count)]

    def _add_row(self, coeffs: dict[int, float], rhs: float, sense: str) -> None:
        nv = self.n_variables
        clean: dict[int, float] = {}
        for col, coef in coeffs.items():
            col = int(col)
            if not (0 <= col < nv):
                raise ValueError(f"coefficient on unknown variable {col}")
            coef = float(coef)
            if coef != 0.0:
                clean[col] = clean.get(col, 0.0) + coef
        self._rows.append(clean)
        self._rhs.append(float(rhs))
        self._senses.append(sense)

    def add_le(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v <= rhs``."""
        self._add_row(coeffs, rhs, "<=")

    def add_ge(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v >= rhs``."""
        self._add_row(coeffs, rhs, ">=")

    def add_eq(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v == rhs``."""
        self._add_row(coeffs, rhs, "==")

    # ------------------------------------------------------------------
    def build_arrays(self):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for the solver."""
        nv = self.n_variables
        data_ub, rows_ub, cols_ub, b_ub = [], [], [], []
        data_eq, rows_eq, cols_eq, b_eq = [], [], [], []
        for coeffs, rhs, sense in zip(self._rows, self._rhs, self._senses):
            if sense == "==":
                r = len(b_eq)
                for col, coef in coeffs.items():
                    rows_eq.append(r)
                    cols_eq.append(col)
                    data_eq.append(coef)
                b_eq.append(rhs)
            else:
                sign = 1.0 if sense == "<=" else -1.0
                r = len(b_ub)
                for col, coef in coeffs.items():
                    rows_ub.append(r)
                    cols_ub.append(col)
                    data_ub.append(sign * coef)
                b_ub.append(sign * rhs)
        A_ub = (
            sp.csr_matrix((data_ub, (rows_ub, cols_ub)), shape=(len(b_ub), nv))
            if b_ub
            else None
        )
        A_eq = (
            sp.csr_matrix((data_eq, (rows_eq, cols_eq)), shape=(len(b_eq), nv))
            if b_eq
            else None
        )
        c = np.asarray(self._objective, dtype=np.float64)
        bounds = list(zip(self._lb, [None if np.isinf(u) else u for u in self._ub]))
        return c, A_ub, np.asarray(b_ub), A_eq, np.asarray(b_eq), bounds

    def solve(self) -> LPSolution:
        """Solve the LP with the HiGHS backend."""
        c, A_ub, b_ub, A_eq, b_eq, bounds = self.build_arrays()
        return solve_lp(
            c,
            A_ub=A_ub,
            b_ub=b_ub if A_ub is not None else None,
            A_eq=A_eq,
            b_eq=b_eq if A_eq is not None else None,
            bounds=bounds,
        )
