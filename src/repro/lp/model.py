"""Incremental sparse LP builder.

Both LP1 and LP2 are built column-by-column over ``(machine, job)`` pairs;
this builder accumulates sparse inequality rows and hands a CSR matrix to
the solver.  It intentionally supports only what the paper's programs need:
minimization, ``<=`` / ``>=`` / ``==`` rows, and per-variable bounds.

Rows arrive through two surfaces with identical semantics:

* the per-row dict API (:meth:`LinearProgram.add_le` / ``add_ge`` /
  ``add_eq``) — convenient for small programs and kept for compatibility;
* the bulk CSR API (:meth:`LinearProgram.add_rows_csr`) — whole constraint
  families as numpy triplet arrays, the assembly path the vectorized
  LP1/LP2 builders use.  One call appends thousands of rows with no
  per-coefficient Python work.

Internally every surface appends *blocks* of COO triplets; duplicate
coefficients within a row sum (exactly the dict API's merge) when the
blocks are concatenated into the final CSR matrices by
:meth:`LinearProgram.build_arrays`, which is fully vectorized and reports
its wall-clock into :data:`repro.lp.stats.LP_STATS` (``assembly_seconds``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.lp.solver import LPSolution, solve_lp
from repro.lp.stats import LP_STATS

__all__ = ["LinearProgram"]

#: Sense encodings used in the internal row blocks.
_SENSE_CODE = {"<=": 0, ">=": 1, "==": 2}


@dataclass
class LinearProgram:
    """A minimization LP assembled incrementally.

    Usage::

        lp = LinearProgram()
        x = lp.add_variable(objective=0.0, lb=0.0)
        t = lp.add_variable(objective=1.0, lb=0.0)
        lp.add_ge({x: 2.0}, 1.0)        # 2 x >= 1
        lp.add_le({x: 1.0, t: -1.0}, 0)  # x <= t
        sol = lp.solve()
    """

    _objective: list[float] = field(default_factory=list)
    _lb: list[float] = field(default_factory=list)
    _ub: list[float] = field(default_factory=list)
    #: COO row blocks: (block-local rows, cols, vals, rhs, sense codes).
    _blocks: list[tuple] = field(default_factory=list)
    _n_rows: int = 0

    @property
    def n_variables(self) -> int:
        """Number of variables added so far."""
        return len(self._objective)

    @property
    def n_constraints(self) -> int:
        """Number of constraint rows added so far."""
        return self._n_rows

    def add_variable(
        self, objective: float = 0.0, lb: float = 0.0, ub: float | None = None
    ) -> int:
        """Add a variable; returns its column index."""
        if ub is not None and ub < lb:
            raise ValueError(f"upper bound {ub} below lower bound {lb}")
        self._objective.append(float(objective))
        self._lb.append(float(lb))
        self._ub.append(np.inf if ub is None else float(ub))
        return len(self._objective) - 1

    def add_variables(
        self, count: int, objective: float = 0.0, lb: float = 0.0, ub: float | None = None
    ) -> list[int]:
        """Add ``count`` identical variables; returns their column indices."""
        if count < 0:
            raise ValueError(f"variable count must be >= 0, got {count}")
        if ub is not None and ub < lb:
            raise ValueError(f"upper bound {ub} below lower bound {lb}")
        start = len(self._objective)
        self._objective.extend([float(objective)] * count)
        self._lb.extend([float(lb)] * count)
        self._ub.extend([np.inf if ub is None else float(ub)] * count)
        return list(range(start, start + count))

    def _add_row(self, coeffs: dict[int, float], rhs: float, sense: str) -> None:
        nv = self.n_variables
        clean: dict[int, float] = {}
        for col, coef in coeffs.items():
            col = int(col)
            if not (0 <= col < nv):
                raise ValueError(f"coefficient on unknown variable {col}")
            coef = float(coef)
            if coef != 0.0:
                clean[col] = clean.get(col, 0.0) + coef
        self._blocks.append(
            (
                np.zeros(len(clean), dtype=np.int64),
                np.fromiter(clean.keys(), dtype=np.int64, count=len(clean)),
                np.fromiter(clean.values(), dtype=np.float64, count=len(clean)),
                np.array([float(rhs)], dtype=np.float64),
                np.array([_SENSE_CODE[sense]], dtype=np.int8),
            )
        )
        self._n_rows += 1

    def add_le(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v <= rhs``."""
        self._add_row(coeffs, rhs, "<=")

    def add_ge(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v >= rhs``."""
        self._add_row(coeffs, rhs, ">=")

    def add_eq(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[v] * x_v == rhs``."""
        self._add_row(coeffs, rhs, "==")

    # ------------------------------------------------------------------
    def add_rows_csr(self, indptr, cols, vals, rhs, senses) -> None:
        """Bulk-append constraint rows given in CSR triplet form.

        Row ``r`` (``0 <= r < len(rhs)``) has coefficients
        ``vals[indptr[r]:indptr[r+1]]`` on variables
        ``cols[indptr[r]:indptr[r+1]]`` and right-hand side ``rhs[r]``.
        ``senses`` is either one sense string (``"<="``/``">="``/``"=="``)
        applied to every row, or a sequence of per-row sense strings.

        Semantics match the per-row dict API exactly: zero coefficients are
        dropped, duplicate columns within a row sum, and rows interleave
        with previously added ones in call order.  All validation is
        vectorized — no per-coefficient Python work.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        rhs = np.ascontiguousarray(rhs, dtype=np.float64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ValueError("indptr must be a 1-D array of length n_rows + 1")
        n_rows = indptr.size - 1
        if rhs.shape != (n_rows,):
            raise ValueError(f"rhs has shape {rhs.shape}, expected ({n_rows},)")
        if indptr[0] != 0 or indptr[-1] != cols.size or (np.diff(indptr) < 0).any():
            raise ValueError("indptr must be nondecreasing from 0 to len(cols)")
        if cols.shape != vals.shape:
            raise ValueError("cols and vals must have equal length")
        if cols.size and (
            int(cols.min()) < 0 or int(cols.max()) >= self.n_variables
        ):
            raise ValueError("coefficient on unknown variable")
        if isinstance(senses, str):
            if senses not in _SENSE_CODE:
                raise ValueError(f"unknown constraint sense {senses!r}")
            sense_codes = np.full(n_rows, _SENSE_CODE[senses], dtype=np.int8)
        else:
            try:
                sense_codes = np.fromiter(
                    (_SENSE_CODE[s] for s in senses), dtype=np.int8, count=n_rows
                )
            except KeyError as exc:
                raise ValueError(f"unknown constraint sense {exc.args[0]!r}") from exc
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
        keep = vals != 0.0
        if not keep.all():
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        self._blocks.append((rows, cols, vals, rhs, sense_codes))
        self._n_rows += n_rows

    # ------------------------------------------------------------------
    def build_arrays(self):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for the solver.

        Fully vectorized: blocks concatenate into one COO triplet set,
        rows split by sense (``>=`` rows negate into ``<=`` form, matching
        scipy's ``A_ub x <= b_ub`` convention), and duplicate coefficients
        within a row sum during CSR conversion.  Wall-clock spent here is
        accumulated into ``LP_STATS.assembly_seconds``.
        """
        t0 = time.perf_counter()
        nv = self.n_variables
        if self._blocks:
            offsets = np.cumsum([0] + [b[3].size for b in self._blocks])
            rows = np.concatenate(
                [b[0] + off for b, off in zip(self._blocks, offsets[:-1])]
            )
            cols = np.concatenate([b[1] for b in self._blocks])
            vals = np.concatenate([b[2] for b in self._blocks])
            rhs = np.concatenate([b[3] for b in self._blocks])
            sense = np.concatenate([b[4] for b in self._blocks])
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            vals = rhs = np.empty(0, dtype=np.float64)
            sense = np.empty(0, dtype=np.int8)

        is_eq = sense == _SENSE_CODE["=="]
        n_eq = int(is_eq.sum())
        n_ub = rhs.size - n_eq
        # Per-family row indices, preserving insertion order within each.
        family_index = np.where(is_eq, np.cumsum(is_eq) - 1, np.cumsum(~is_eq) - 1)
        row_sign = np.where(sense == _SENSE_CODE[">="], -1.0, 1.0)

        ent_eq = is_eq[rows]
        A_ub = None
        b_ub = np.asarray([], dtype=np.float64)
        if n_ub:
            um = ~ent_eq
            A_ub = sp.csr_matrix(
                (vals[um] * row_sign[rows[um]], (family_index[rows[um]], cols[um])),
                shape=(n_ub, nv),
            )
            b_ub = (rhs * row_sign)[~is_eq]
        A_eq = None
        b_eq = np.asarray([], dtype=np.float64)
        if n_eq:
            A_eq = sp.csr_matrix(
                (vals[ent_eq], (family_index[rows[ent_eq]], cols[ent_eq])),
                shape=(n_eq, nv),
            )
            b_eq = rhs[is_eq]

        c = np.asarray(self._objective, dtype=np.float64)
        bounds = list(zip(self._lb, [None if np.isinf(u) else u for u in self._ub]))
        LP_STATS.add("assembly_seconds", time.perf_counter() - t0)
        return c, A_ub, b_ub, A_eq, b_eq, bounds

    def solve(self) -> LPSolution:
        """Solve the LP with the HiGHS backend."""
        c, A_ub, b_ub, A_eq, b_eq, bounds = self.build_arrays()
        return solve_lp(
            c,
            A_ub=A_ub,
            b_ub=b_ub if A_ub is not None else None,
            A_eq=A_eq,
            b_eq=b_eq if A_eq is not None else None,
            bounds=bounds,
        )
