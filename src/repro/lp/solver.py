"""Thin wrapper around scipy's HiGHS LP backend.

scipy is the one external solver dependency the reproduction allows itself
(writing a competitive simplex/IPM implementation is out of scope and would
only add noise to the algorithms under study).  Everything above this layer
— the LP formulations, the roundings, the flow networks — is ours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleLPError
from repro.lp.stats import LP_STATS

__all__ = ["LPSolution", "solve_lp"]


@dataclass(frozen=True)
class LPSolution:
    """An optimal LP solution.

    Attributes
    ----------
    x:
        Optimal variable values.
    value:
        Optimal objective value.
    """

    x: np.ndarray
    value: float


def solve_lp(
    c,
    A_ub=None,
    b_ub=None,
    A_eq=None,
    b_eq=None,
    bounds=None,
) -> LPSolution:
    """Minimize ``c @ x`` subject to the given constraints.

    Raises
    ------
    InfeasibleLPError
        If HiGHS reports anything but optimality (infeasible, unbounded, or
        a numerical failure), with the solver's message attached.
    """
    LP_STATS.add("lp_solves")
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise InfeasibleLPError(
            f"LP solve failed (status {res.status}): {res.message}", status=res.status
        )
    return LPSolution(x=np.asarray(res.x, dtype=np.float64), value=float(res.fun))
