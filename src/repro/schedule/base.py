"""Scheduling policies and simulation state.

The paper defines a schedule as a function from history and time to an
assignment of machines to jobs.  We realize schedules as *policies*: objects
the simulator queries once per unit timestep.  The policy sees a
:class:`SimulationState` snapshot (time, remaining/eligible job sets,
accrued log mass) — exactly the information the paper allows a
polynomial-time schedule to condition on — and returns one job id (or
:data:`IDLE`) per machine.

Contract
--------
* ``start(instance, rng)`` is called once before the first step.  All
  randomness a policy uses must come from the ``rng`` it is given, so runs
  are reproducible.
* ``assign(state)`` is called exactly once per simulated timestep, in time
  order.  Policies may keep internal counters; the engine never rewinds.
* Assigning a machine to a *completed* job is allowed (the machine idles —
  the paper's ``⊥`` convention for concise schedules).  Assigning to a job
  whose predecessors are incomplete raises
  :class:`~repro.errors.ScheduleViolationError` in the engine.
* State snapshots are **live read-only views**: the engine mutates the
  underlying buffers in place between steps, so a snapshot is only valid
  *during* the ``assign`` call it was passed to.  Policies that need
  history must copy what they keep (``state.remaining.copy()``); writing
  to a snapshot raises (``writeable=False``).

Batched execution
-----------------
:class:`VectorizedPolicy` extends the contract to the trial-vectorized
kernel in :mod:`repro.sim.batch`: ``assign_batch`` receives a
:class:`BatchSimulationState` holding ``(n_trials, n_jobs)`` masks and
returns an ``(n_trials, m)`` assignment — one row per concurrently
simulated trial, all at the same global timestep.  A policy advertising
batch support must be a *deterministic* function of the instance and the
state it is shown; that is what makes the batch kernel's makespans
trial-for-trial identical to the scalar SUU* engine under shared
thresholds (the rng passed to ``start_batch`` exists for forward
compatibility and must not influence assignments if that guarantee is to
hold).

Phase-grouped execution
-----------------------
:class:`PhasedPolicy` is the middle ground for *adaptive* policies, whose
assignments depend on which jobs completed in each trial and therefore
cannot be one broadcast row.  Their per-trial control state is coarse — a
round index, a segment index, a cursor into a solved schedule — so at any
global timestep the live trials fall into a small number of *phases* that
each map to one assignment row.  The batch kernel asks ``phase_key`` for
every live trial, partitions trials by key, and calls ``assign_group``
once per distinct key instead of once per trial; see
:mod:`repro.sim.batch` for the dispatch loop and the RNG discipline the
implementation must uphold.

Under RNG discipline ``"v2"`` (see :mod:`repro.util.rng`) a phased policy
may additionally implement :meth:`PhasedPolicy.start_phased_v2` to receive
matrix-valued policy randomness from the batch's
:class:`~repro.util.rng.BatchStreams` instead of per-trial generators —
SUU-C/SUU-T use this to draw all chain delays as one ``(n_trials,
n_chains)`` matrix and run array-based chain cursors.  The method is
optional and may decline (return False), in which case the kernel falls
back to the v1-style :meth:`PhasedPolicy.start_phased`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "IDLE",
    "SimulationState",
    "BatchSimulationState",
    "Policy",
    "VectorizedPolicy",
    "PhasedPolicy",
    "supports_batch",
    "supports_phased",
    "IntegralAssignment",
]

#: Assignment value meaning "machine stays idle this step".
IDLE: int = -1


@dataclass(frozen=True)
class SimulationState:
    """Snapshot of an execution the policy may condition on.

    The arrays are *live read-only views* of the engine's buffers
    (``writeable=False``): they reflect the current step during the
    ``assign`` call and are mutated in place afterwards.  Copy anything
    you keep across steps.

    Attributes
    ----------
    t:
        Current timestep (0-based; the assignment returned will be executed
        during step ``t``).
    remaining:
        Boolean mask over jobs: True while a job is not yet complete.
    eligible:
        Boolean mask: True when a job is remaining *and* all its
        predecessors have completed.
    mass_accrued:
        Total log mass delivered to each job so far.  (Under SUU semantics
        this is bookkeeping a schedule could compute itself from its own
        history; exposing it keeps policies simple without leaking the
        hidden thresholds of SUU*.)
    """

    t: int
    remaining: np.ndarray
    eligible: np.ndarray
    mass_accrued: np.ndarray

    @property
    def n_remaining(self) -> int:
        """Number of uncompleted jobs."""
        return int(self.remaining.sum())


@dataclass(frozen=True)
class BatchSimulationState:
    """Snapshot of ``n_trials`` lock-stepped executions at one timestep.

    The batched analogue of :class:`SimulationState`: every per-job array
    gains a leading trial axis.  Snapshots are live read-only views with
    the same lifetime rule — valid only during the ``assign_batch`` call.

    Attributes
    ----------
    t:
        Current global timestep (all trials advance in lock step; trials
        whose jobs have all completed are frozen but still shown).
    remaining / eligible / mass_accrued:
        Shape ``(n_trials, n_jobs)`` — row ``b`` is trial ``b``'s view.
    active:
        Shape ``(n_trials,)`` — True while trial ``b`` has remaining jobs.
        Assignments returned for inactive trials are ignored.
    """

    t: int
    remaining: np.ndarray
    eligible: np.ndarray
    mass_accrued: np.ndarray
    active: np.ndarray

    @property
    def n_trials(self) -> int:
        """Number of concurrently simulated trials."""
        return int(self.remaining.shape[0])


class Policy(abc.ABC):
    """Base class for scheduling policies.

    Subclasses must implement :meth:`assign`; :meth:`start` defaults to a
    no-op for stateless policies.
    """

    #: Human-readable name used in results and experiment tables.
    name: str = "policy"

    def start(self, instance, rng: np.random.Generator) -> None:
        """Prepare for a fresh execution of ``instance``.

        Called once per simulation before any :meth:`assign` call.  Policies
        that solve LPs or draw random delays do so here.
        """

    @abc.abstractmethod
    def assign(self, state: SimulationState) -> np.ndarray:
        """Return this step's assignment: array of shape ``(m,)``.

        Entry ``i`` is the job machine ``i`` runs during step ``state.t``,
        or :data:`IDLE`.
        """
        raise NotImplementedError


class VectorizedPolicy(Policy):
    """A policy that can drive many trials at once (the batch protocol).

    Subclasses implement :meth:`assign_batch`; :meth:`start_batch` defaults
    to the scalar :meth:`Policy.start` because the preparation work
    (LP solves, schedule layout, instance caching) is trial-independent for
    every vectorizable policy — doing it *once* per batch rather than once
    per trial is a large part of the batch kernel's speedup.

    Determinism contract: assignments must be a pure function of
    ``(instance, state)``.  The batch kernel relies on this to guarantee
    that, under SUU* semantics with a shared threshold matrix, batched
    makespans equal the scalar engine's trial for trial.  Capability
    detection is structural (:func:`supports_batch`), so third-party
    policies may implement the two methods without subclassing.
    """

    def start_batch(self, instance, rng: np.random.Generator, n_trials: int) -> None:
        """Prepare for a fresh batch of ``n_trials`` lock-stepped trials."""
        self.start(instance, rng)

    @abc.abstractmethod
    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        """Return assignments for every trial: shape ``(n_trials, m)``.

        Row ``b``, entry ``i`` is the job machine ``i`` runs during step
        ``state.t`` of trial ``b``, or :data:`IDLE`.  Rows of inactive
        trials are ignored by the engine.
        """
        raise NotImplementedError


class PhasedPolicy(Policy):
    """An adaptive policy whose trials can be *grouped by phase* each step.

    Adaptive policies condition on per-trial completion history, so a
    single broadcast ``assign_batch`` row cannot drive them.  But their
    per-trial control state is typically coarse — SEM's round index and
    cursor into the round's solved schedule, LAYERED's level, SUU-C's
    superstep — so many lock-stepped trials share one assignment row at
    any global timestep.  The phased protocol exposes exactly that
    structure to the batch kernel:

    * :meth:`start_phased` prepares per-trial replicas of the policy's
      control state for ``len(trial_rngs)`` lock-stepped trials.
      ``trial_rngs[k]`` is **the same policy generator** trial ``k``'s
      scalar run would receive from the engine's
      ``spawn(2) -> (policy_rng, outcome_rng)`` split; any internal
      randomness (e.g. SUU-C's chain delays) must be drawn from it in the
      scalar order so grouped runs stay bit-identical to the per-trial
      loop.  Trial-independent preparation (LP solves, rounding, chain
      programs) should be done once here, not once per trial.
    * ``begin_step(state)`` is an *optional* hook the kernel calls once
      per step, before any ``phase_key`` query, when the policy defines
      it.  Policies whose per-step bookkeeping vectorizes across trials
      (SUU-C/SUU-T's signature-grouped boundary stepping under discipline
      v2) advance all live trials here in one batch pass and answer the
      subsequent per-trial ``phase_key`` calls from a precomputed table.
    * :meth:`phase_key` is called once per *live* trial per step, in
      ascending trial order.  It returns a hashable key such that two
      trials with equal keys receive identical assignment rows this step.
      It may advance the trial's internal bookkeeping (begin a round,
      enter a level) — the kernel guarantees the call order.
    * :meth:`assign_group` is called once per distinct key with the trial
      indices that returned it; it returns their assignments and advances
      those trials' step cursors.

    Keys never need to be comparable across policies — only within one
    execution.  A policy may return a per-trial unique key (degenerate
    grouping) when its rows depend on per-trial randomness; it still
    benefits from shared ``start_phased`` work and the vectorized engine.
    Such policies should set :attr:`phase_grouping` to ``"replica"`` so
    schedulers (e.g. the process backend's serial fast path) know the
    in-process batch win is modest.
    """

    #: Grouping structure: ``"keyed"`` (trials genuinely share rows) or
    #: ``"replica"`` (per-trial keys; batch win limited to shared start
    #: work + the vectorized engine).
    phase_grouping: str = "keyed"

    #: Grouping structure under RNG discipline v2 (policies that trade
    #: per-trial replicas for array state override this to ``"keyed"``).
    phase_grouping_v2: str | None = None

    def start_phased(self, instance, trial_rngs) -> None:
        """Prepare per-trial state for ``len(trial_rngs)`` lock-stepped trials."""
        raise NotImplementedError

    def start_phased_v2(self, instance, streams, n_trials: int) -> bool:
        """Optional discipline-v2 entry point (batch-native randomness).

        ``streams`` is the batch's :class:`~repro.util.rng.BatchStreams`;
        any internal randomness must be drawn from it as whole-batch
        matrices (chunk-invariant, one row per trial) rather than from
        per-trial generators.  Return True when v2 state was installed;
        return False to decline, in which case the kernel runs the
        v1-style :meth:`start_phased` instead (legal — v2 only requires
        statistical equivalence, which per-trial replicas also satisfy).
        """
        return False

    @abc.abstractmethod
    def phase_key(self, trial: int, state: BatchSimulationState):
        """Return trial ``trial``'s phase key for the current step.

        Trials returning equal keys must produce identical assignment rows
        this step.  Called exactly once per live trial per step, ascending.
        """
        raise NotImplementedError

    @abc.abstractmethod
    def assign_group(self, state: BatchSimulationState, trials: np.ndarray) -> np.ndarray:
        """Assignments for one phase group.

        ``trials`` holds the (ascending) indices that returned the same
        :meth:`phase_key` this step.  Returns shape ``(len(trials), m)``,
        or ``(m,)`` to broadcast one shared row to the whole group.
        """
        raise NotImplementedError


def supports_batch(policy) -> bool:
    """True when ``policy`` implements the batched-assignment protocol.

    Structural check (not ``isinstance``): any object with callable
    ``assign_batch`` and ``start_batch`` attributes qualifies, so the
    protocol can be adopted without inheriting :class:`VectorizedPolicy`.
    """
    return callable(getattr(policy, "assign_batch", None)) and callable(
        getattr(policy, "start_batch", None)
    )


def supports_phased(policy) -> bool:
    """True when ``policy`` implements the phase-grouped dispatch protocol.

    Structural, like :func:`supports_batch`: callable ``phase_key``,
    ``assign_group`` and ``start_phased`` attributes qualify without
    inheriting :class:`PhasedPolicy`.
    """
    return (
        callable(getattr(policy, "phase_key", None))
        and callable(getattr(policy, "assign_group", None))
        and callable(getattr(policy, "start_phased", None))
    )


@dataclass(frozen=True)
class IntegralAssignment:
    """An integral machine-to-job step allocation ``{x_ij}``.

    This is the object the LP roundings produce: ``x[i, j]`` is the number
    of unit steps machine ``i`` dedicates to job ``j``.  It is *not* yet a
    schedule — :class:`~repro.schedule.oblivious.FiniteObliviousSchedule`
    lays the steps out on a timeline.

    Attributes
    ----------
    x:
        Step counts, shape ``(m, n)``, dtype int64.  Columns of jobs outside
        the assignment's job subset are zero.
    jobs:
        The job subset the assignment covers.
    target:
        The log-mass target ``L`` each covered job was guaranteed.
    """

    x: np.ndarray
    jobs: tuple[int, ...]
    target: float

    def __post_init__(self):
        x = np.asarray(self.x)
        if x.ndim != 2 or x.dtype.kind not in "iu":
            raise ValueError("x must be a 2-D integer matrix")
        if (x < 0).any():
            raise ValueError("assignment entries must be nonnegative")

    @property
    def load(self) -> int:
        """Maximum steps any machine is assigned: ``max_i sum_j x_ij``."""
        return int(self.x.sum(axis=1).max()) if self.x.size else 0

    @property
    def machine_loads(self) -> np.ndarray:
        """Per-machine total steps ``sum_j x_ij``."""
        return self.x.sum(axis=1)

    @property
    def lengths(self) -> np.ndarray:
        """Per-job lengths ``d_j = max_i x_ij`` (the paper's job length)."""
        return self.x.max(axis=0)

    def mass_per_job(self, ell: np.ndarray) -> np.ndarray:
        """Log mass each job receives under log-mass matrix ``ell``."""
        return (self.x * ell).sum(axis=0)
