"""Schedule representations: policies, oblivious tables, pseudoschedules."""

from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    IntegralAssignment,
    Policy,
    SimulationState,
    VectorizedPolicy,
    supports_batch,
)
from repro.schedule.oblivious import FiniteObliviousSchedule, RepeatingObliviousPolicy
from repro.schedule.pseudo import (
    ChainProgram,
    JobBlock,
    Pause,
    build_chain_programs,
    congestion_profile,
    draw_delays,
    flattened_length,
)

__all__ = [
    "IDLE",
    "Policy",
    "VectorizedPolicy",
    "supports_batch",
    "SimulationState",
    "BatchSimulationState",
    "IntegralAssignment",
    "FiniteObliviousSchedule",
    "RepeatingObliviousPolicy",
    "ChainProgram",
    "JobBlock",
    "Pause",
    "build_chain_programs",
    "draw_delays",
    "congestion_profile",
    "flattened_length",
]
