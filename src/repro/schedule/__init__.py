"""Schedule representations: policies, oblivious tables, pseudoschedules."""

from repro.schedule.base import IDLE, IntegralAssignment, Policy, SimulationState
from repro.schedule.oblivious import FiniteObliviousSchedule, RepeatingObliviousPolicy
from repro.schedule.pseudo import (
    ChainProgram,
    JobBlock,
    Pause,
    build_chain_programs,
    congestion_profile,
    draw_delays,
    flattened_length,
)

__all__ = [
    "IDLE",
    "Policy",
    "SimulationState",
    "IntegralAssignment",
    "FiniteObliviousSchedule",
    "RepeatingObliviousPolicy",
    "ChainProgram",
    "JobBlock",
    "Pause",
    "build_chain_programs",
    "draw_delays",
    "congestion_profile",
    "flattened_length",
]
