"""Schedule representations: policies, oblivious tables, pseudoschedules."""

from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    IntegralAssignment,
    PhasedPolicy,
    Policy,
    SimulationState,
    VectorizedPolicy,
    supports_batch,
    supports_phased,
)
from repro.schedule.oblivious import FiniteObliviousSchedule, RepeatingObliviousPolicy
from repro.schedule.pseudo import (
    ChainProgram,
    JobBlock,
    Pause,
    build_chain_programs,
    congestion_profile,
    draw_delays,
    flattened_length,
)

__all__ = [
    "IDLE",
    "Policy",
    "VectorizedPolicy",
    "PhasedPolicy",
    "supports_batch",
    "supports_phased",
    "SimulationState",
    "BatchSimulationState",
    "IntegralAssignment",
    "FiniteObliviousSchedule",
    "RepeatingObliviousPolicy",
    "ChainProgram",
    "JobBlock",
    "Pause",
    "build_chain_programs",
    "draw_delays",
    "congestion_profile",
    "flattened_length",
]
