"""Finite oblivious schedules.

A finite oblivious schedule fixes, for every timestep ``0..length-1``, the
full machine-to-job assignment in advance — no dependence on which jobs have
completed.  The LP-based algorithms build one from an
:class:`~repro.schedule.base.IntegralAssignment` by laying out each
machine's step budget job-by-job (the order is arbitrary per the paper; we
sort by job id for determinism).
"""

from __future__ import annotations

import numpy as np

from repro.schedule.base import (
    IDLE,
    BatchSimulationState,
    IntegralAssignment,
    SimulationState,
    VectorizedPolicy,
)

__all__ = ["FiniteObliviousSchedule", "RepeatingObliviousPolicy"]


class FiniteObliviousSchedule:
    """A fixed table of assignments: ``table[t, i]`` = job or IDLE.

    Parameters
    ----------
    table:
        Integer array of shape ``(length, m)``.
    """

    def __init__(self, table: np.ndarray):
        table = np.ascontiguousarray(np.asarray(table, dtype=np.int64))
        if table.ndim != 2:
            raise ValueError(f"schedule table must be 2-D, got shape {table.shape}")
        if (table < IDLE).any():
            raise ValueError("schedule table entries must be >= IDLE (-1)")
        table.setflags(write=False)
        self.table = table

    @classmethod
    def from_assignment(cls, assignment: IntegralAssignment) -> "FiniteObliviousSchedule":
        """Lay out an integral assignment machine-by-machine.

        Machine ``i`` runs job ``j`` for ``x[i, j]`` consecutive steps, jobs
        in increasing id order; machines with less total work idle at the
        tail.  The schedule length is the assignment's load.
        """
        x = assignment.x
        m, n = x.shape
        length = int(x.sum(axis=1).max()) if x.size else 0
        table = np.full((length, m), IDLE, dtype=np.int64)
        for i in range(m):
            t = 0
            for j in range(n):
                steps = int(x[i, j])
                if steps:
                    table[t : t + steps, i] = j
                    t += steps
        return cls(table)

    @property
    def length(self) -> int:
        """Number of timesteps the schedule spans."""
        return self.table.shape[0]

    @property
    def n_machines(self) -> int:
        """Number of machines the schedule drives."""
        return self.table.shape[1]

    def assignment_at(self, t: int) -> np.ndarray:
        """The assignment row for local time ``t`` (read-only view)."""
        if not (0 <= t < self.length):
            raise IndexError(f"step {t} outside schedule of length {self.length}")
        return self.table[t]

    def mass_per_step(self, ell: np.ndarray) -> np.ndarray:
        """Log mass delivered to each job at each step, shape ``(length, n)``.

        Row ``t`` holds the mass every job receives during step ``t``
        (assuming no job has completed).  Used by the exact oblivious-repeat
        sampler and by schedule-quality tests.
        """
        length, m = self.table.shape
        n = ell.shape[1]
        out = np.zeros((length, n), dtype=np.float64)
        for i in range(m):
            col = self.table[:, i]
            mask = col >= 0
            if mask.any():
                np.add.at(out, (np.nonzero(mask)[0], col[mask]), ell[i, col[mask]])
        return out


class RepeatingObliviousPolicy(VectorizedPolicy):
    """Run a finite oblivious schedule in a loop until all jobs complete.

    This is the execution model of SUU-I-OBL (Theorem 3): the schedule from
    the rounded LP1 solution is repeated; each full pass gives every job a
    constant success probability, so ``O(log n)`` passes suffice whp.

    Oblivious schedules are the canonical vectorizable family: the
    assignment depends only on the timestep, so the batched form is one
    broadcast row shared by every trial.
    """

    name = "repeat-oblivious"

    def __init__(self, schedule: FiniteObliviousSchedule):
        if schedule.length == 0:
            raise ValueError("cannot repeat an empty schedule")
        self.schedule = schedule
        self._step = 0

    def start(self, instance, rng) -> None:
        if instance.n_machines != self.schedule.n_machines:
            raise ValueError(
                f"schedule drives {self.schedule.n_machines} machines but the "
                f"instance has {instance.n_machines}"
            )
        self._step = 0

    def assign(self, state: SimulationState) -> np.ndarray:
        row = self.schedule.assignment_at(self._step % self.schedule.length)
        self._step += 1
        return row

    def assign_batch(self, state: BatchSimulationState) -> np.ndarray:
        # Lock-stepped trials all sit at global time state.t, so the scalar
        # step counter is simply the timestep.
        row = self.schedule.assignment_at(state.t % self.schedule.length)
        return np.broadcast_to(row, (state.n_trials, row.size))
