"""Pseudoschedules: chain programs, supersteps, congestion, random delays.

Section 4 of the paper builds, for each chain ``C_k``, an adaptive schedule
``Σ_k`` that walks the chain job by job, running each job's oblivious
assignment block (length ``d_j`` supersteps) and repeating it on failure.
Running all the ``Σ_k`` "in parallel" yields a *pseudoschedule* whose
timesteps are called **supersteps**; a machine may be asked to run several
jobs in one superstep.  The number of jobs a machine is asked to run at
superstep ``s`` is its congestion; ``c(s)`` is the max over machines, and
the pseudoschedule is *flattened* by expanding superstep ``s`` into ``c(s)``
real timesteps.

Random delays (Theorem 7): delaying each chain's start by an independent
uniform draw from ``{0, ..., H}`` (``H`` = the assignment's load) drops the
maximum congestion to ``O(log(n+m) / log log(n+m))`` with high probability.

This module provides the *data model* (blocks, pauses, chain programs) and
the *static* analysis used to verify Theorem 7 empirically: the congestion
profile of one deterministic pass (every block succeeding once).  The
adaptive execution with stochastic retries lives in
:mod:`repro.core.suu_c`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schedule.base import IntegralAssignment
from repro.util.rng import ensure_rng

__all__ = [
    "JobBlock",
    "Pause",
    "ChainProgram",
    "build_chain_programs",
    "draw_delays",
    "congestion_profile",
    "flattened_length",
]


@dataclass(frozen=True)
class JobBlock:
    """One job's oblivious assignment block inside a chain schedule.

    During block-local superstep ``tau`` (``0 <= tau < length``), the
    machines running the job are those with ``steps[i] > tau`` — machine
    ``i`` works the first ``steps[i]`` supersteps of the block and then
    idles until the block ends, exactly as in the paper ("machine i remains
    idle from time t + x_ij to t + d_j").

    ``prelude`` counts *reinserted* solo steps (the non-polynomial-``t_LP2``
    trick of Section 4): real timesteps executed before the block's
    supersteps, during which only this job runs.
    """

    job: int
    steps: tuple[tuple[int, int], ...]  # (machine, step-count), step-count > 0
    length: int
    prelude: tuple[tuple[int, int], ...] = ()

    def machines_at(self, tau: int) -> list[int]:
        """Machines assigned during block-local superstep ``tau``."""
        return [i for i, cnt in self.steps if cnt > tau]

    @property
    def prelude_length(self) -> int:
        """Real solo steps to reinsert before the block (max over machines)."""
        return max((cnt for _, cnt in self.prelude), default=0)


@dataclass(frozen=True)
class Pause:
    """Placeholder for a *long* job: the chain waits ``length`` supersteps.

    The long job itself is executed by the SUU-I-SEM run at the end of the
    segment in which the pause started; the chain resumes after the pause
    expires *and* the job has completed.
    """

    job: int
    length: int


@dataclass(frozen=True)
class ChainProgram:
    """The per-chain schedule ``Σ_k``: an ordered list of blocks and pauses."""

    chain_index: int
    items: tuple

    @property
    def n_supersteps_one_pass(self) -> int:
        """Supersteps for one failure-free pass through the chain."""
        return sum(item.length for item in self.items)


def build_chain_programs(
    chains: list[list[int]],
    assignment: IntegralAssignment,
    *,
    gamma: int | None = None,
    unit: int = 1,
) -> list[ChainProgram]:
    """Compile chains plus an integral assignment into chain programs.

    Parameters
    ----------
    chains:
        The chains (ordered job lists) of the SUU-C instance.
    assignment:
        The rounded LP2 assignment ``{x_ij}``.
    gamma:
        Long-job threshold: jobs with length ``d_j > gamma`` become
        :class:`Pause` items of length ``gamma`` (handled by segment-boundary
        SEM runs).  ``None`` means no job is long.
    unit:
        The rounding unit ``Δ`` of the non-polynomial-``t_LP2`` trick.  Step
        counts are rounded down to multiples of ``Δ``; the lost steps are
        re-inserted as solo ``prelude`` steps.  ``Δ = 1`` (the default)
        leaves assignments untouched.
    """
    if unit < 1:
        raise ValueError(f"unit must be >= 1, got {unit}")
    x = assignment.x
    programs: list[ChainProgram] = []
    for k, chain in enumerate(chains):
        items: list = []
        for j in chain:
            d_j = int(x[:, j].max())
            if gamma is not None and d_j > gamma:
                items.append(Pause(job=j, length=int(gamma)))
                continue
            main: list[tuple[int, int]] = []
            prelude: list[tuple[int, int]] = []
            for i in np.nonzero(x[:, j])[0]:
                cnt = int(x[i, j])
                rounded = (cnt // unit) * unit
                if rounded:
                    main.append((int(i), rounded))
                rem = cnt - rounded
                if rem:
                    prelude.append((int(i), rem))
            length = max((cnt for _, cnt in main), default=0)
            items.append(
                JobBlock(
                    job=j,
                    steps=tuple(main),
                    length=length,
                    prelude=tuple(prelude),
                )
            )
        programs.append(ChainProgram(chain_index=k, items=tuple(items)))
    return programs


def draw_delays(
    n_chains: int, horizon: int, rng, *, unit: int = 1, enabled: bool = True
) -> np.ndarray:
    """Random start delays: uniform over ``{0, Δ, 2Δ, ..., ⌊H/Δ⌋·Δ}``.

    With ``enabled=False`` all delays are zero (the no-delay ablation of
    Theorem 7).
    """
    rng = ensure_rng(rng)
    if not enabled or horizon <= 0:
        return np.zeros(n_chains, dtype=np.int64)
    slots = horizon // unit + 1
    return rng.integers(0, slots, size=n_chains) * unit


def congestion_profile(
    programs: list[ChainProgram], delays, n_machines: int
) -> np.ndarray:
    """Per-superstep congestion ``c(s)`` of one deterministic pass.

    Every block is assumed to succeed on its first execution (no retries),
    which is the setting of Theorem 7's statement: congestion is a property
    of the pseudoschedule's *layout*, independent of the stochastic
    outcomes (the random delays are independent of job success/failure).

    Returns the array ``c(0..S-1)`` where ``S`` is the last busy superstep.
    """
    delays = np.asarray(delays, dtype=np.int64)
    if delays.shape != (len(programs),):
        raise ValueError(
            f"need one delay per chain, got {delays.shape} for {len(programs)} chains"
        )
    # Each (machine, step-count) entry of a block is one busy interval
    # [start, start + cnt) for that machine; collect the intervals and
    # resolve per-step occupancy with a vectorized difference array
    # instead of bumping a counter per (superstep, machine) pair.
    starts: list[int] = []
    ends: list[int] = []
    machines: list[int] = []
    for prog, delay in zip(programs, delays):
        s = int(delay)
        for item in prog.items:
            if not isinstance(item, Pause):
                for i, cnt in item.steps:
                    starts.append(s)
                    ends.append(s + cnt)
                    machines.append(i)
            s += item.length
    if not starts:
        return np.zeros(0, dtype=np.int64)
    horizon = max(ends)  # ends are exclusive: last busy superstep + 1
    diff = np.zeros((horizon + 1, n_machines), dtype=np.int64)
    np.add.at(diff, (np.asarray(starts), machines), 1)
    np.add.at(diff, (np.asarray(ends), machines), -1)
    occupancy = np.cumsum(diff[:-1], axis=0)
    return occupancy.max(axis=1)


def flattened_length(congestion: np.ndarray) -> int:
    """Total real timesteps after flattening: ``sum_s c(s)``."""
    return int(np.asarray(congestion).sum())
