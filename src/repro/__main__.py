"""Command-line interface: generate, run, and inspect SUU instances.

Usage::

    python -m repro generate --shape chains --jobs 20 --machines 5 \\
        --model specialist --seed 3 --out inst.json
    python -m repro run inst.json --policy suu-c --trials 30 --seed 7
    python -m repro gantt inst.json --policy sem --seed 1
    python -m repro bound inst.json

Policies: ``obl``, ``sem``, ``adapt``, ``suu-c``, ``suu-t``, ``layered``,
``greedy``, ``serial``, ``round-robin``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.bounds import lower_bound
from repro.baselines.greedy_lr import GreedyLRPolicy
from repro.baselines.naive import RoundRobinPolicy, SerialAllMachinesPolicy
from repro.core.adaptive import SUUIAdaptiveLPPolicy
from repro.core.layered import LayeredPolicy
from repro.core.suu_c import SUUCPolicy
from repro.core.suu_i_obl import SUUIOblPolicy
from repro.core.suu_i_sem import SUUISemPolicy
from repro.core.suu_t import SUUTPolicy
from repro.instance import (
    chain_instance,
    forest_instance,
    independent_instance,
    layered_instance,
    load_instance,
    save_instance,
    tree_instance,
)
from repro.sim.engine import run_policy
from repro.sim.montecarlo import estimate_expected_makespan
from repro.sim.trace import TracingPolicy, render_gantt

POLICIES = {
    "obl": SUUIOblPolicy,
    "sem": SUUISemPolicy,
    "adapt": SUUIAdaptiveLPPolicy,
    "suu-c": SUUCPolicy,
    "suu-t": SUUTPolicy,
    "layered": LayeredPolicy,
    "greedy": GreedyLRPolicy,
    "serial": SerialAllMachinesPolicy,
    "round-robin": RoundRobinPolicy,
}


def _cmd_generate(args) -> int:
    if args.shape == "independent":
        inst = independent_instance(args.jobs, args.machines, args.model, rng=args.seed)
    elif args.shape == "chains":
        inst = chain_instance(
            args.jobs, args.machines, max(1, args.jobs // 6), args.model, rng=args.seed
        )
    elif args.shape == "tree":
        inst = tree_instance(args.jobs, args.machines, "out", args.model, rng=args.seed)
    elif args.shape == "forest":
        inst = forest_instance(
            args.jobs, args.machines, max(1, args.jobs // 10), "mixed", args.model,
            rng=args.seed,
        )
    elif args.shape == "layered":
        half = max(1, args.jobs // 2)
        inst = layered_instance(
            [half, args.jobs - half or 1], args.machines, args.model, rng=args.seed
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.shape)
    save_instance(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


def _default_policy_for(inst) -> str:
    cls = inst.precedence_class.value
    return {
        "independent": "sem",
        "chains": "suu-c",
        "out_forest": "suu-t",
        "in_forest": "suu-t",
        "mixed_forest": "suu-t",
        "general": "layered",
    }[cls]


def _cmd_run(args) -> int:
    inst = load_instance(args.instance)
    name = args.policy or _default_policy_for(inst)
    factory = POLICIES[name]
    stats = estimate_expected_makespan(
        inst, factory, args.trials, rng=args.seed, max_steps=args.max_steps
    )
    bound = lower_bound(inst)
    lo, hi = stats.ci95
    print(f"instance: {inst}")
    print(f"policy:   {name}")
    print(f"E[T] = {stats.mean:.3f} steps   95% CI [{lo:.3f}, {hi:.3f}] "
          f"({args.trials} trials)")
    print(f"lower bound = {bound:.3f}   measured ratio <= {stats.mean / bound:.3f}")
    return 0


def _cmd_gantt(args) -> int:
    inst = load_instance(args.instance)
    name = args.policy or _default_policy_for(inst)
    traced = TracingPolicy(POLICIES[name]())
    result = run_policy(inst, traced, rng=args.seed, max_steps=args.max_steps)
    print(f"{inst}  policy={name}  makespan={result.makespan}")
    print(render_gantt(traced.trace, max_width=args.width,
                       completion_times=result.completion_times))
    return 0


def _cmd_bound(args) -> int:
    inst = load_instance(args.instance)
    print(f"instance: {inst}")
    print(f"lower bound on E[T_OPT]: {lower_bound(inst):.4f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Multiprocessor scheduling under uncertainty (SPAA 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a random instance")
    g.add_argument("--shape", choices=["independent", "chains", "tree", "forest", "layered"],
                   default="independent")
    g.add_argument("--jobs", type=int, default=20)
    g.add_argument("--machines", type=int, default=5)
    g.add_argument("--model", choices=["uniform", "powerlaw", "specialist", "related"],
                   default="specialist")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True)
    g.set_defaults(func=_cmd_generate)

    r = sub.add_parser("run", help="estimate a policy's expected makespan")
    r.add_argument("instance")
    r.add_argument("--policy", choices=sorted(POLICIES), default=None,
                   help="default: matched to the precedence class")
    r.add_argument("--trials", type=int, default=30)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--max-steps", type=int, default=1_000_000)
    r.set_defaults(func=_cmd_run)

    ga = sub.add_parser("gantt", help="render one execution as ASCII")
    ga.add_argument("instance")
    ga.add_argument("--policy", choices=sorted(POLICIES), default=None)
    ga.add_argument("--seed", type=int, default=0)
    ga.add_argument("--width", type=int, default=100)
    ga.add_argument("--max-steps", type=int, default=1_000_000)
    ga.set_defaults(func=_cmd_gantt)

    b = sub.add_parser("bound", help="print the provable lower bound")
    b.add_argument("instance")
    b.set_defaults(func=_cmd_bound)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
