"""Command-line interface: generate, run, sweep, and inspect SUU instances.

Usage::

    python -m repro generate --shape chains --jobs 20 --machines 5 \\
        --model specialist --seed 3 --out inst.json
    python -m repro run inst.json --policy suu-c --trials 30 --seed 7
    python -m repro gantt inst.json --policy sem --seed 1
    python -m repro bound inst.json
    python -m repro policies
    python -m repro sweep --shape independent --shape chains \\
        --jobs 20 --jobs 40 --trials 20 --backend process
    python -m repro serve --port 8075 --executor warm-pool --workers 4
    python -m repro loadgen --url http://127.0.0.1:8075 --rps 50 \\
        --duration 10

Policy names come from the :mod:`repro.api` registry (``repro policies``
lists them); every command resolving a policy accepts canonical names and
aliases, and defaults to the registered policy for the instance's
precedence class.  ``serve`` runs the persistent scheduling service
(:mod:`repro.server`); ``loadgen`` drives it with wrk2-style open-loop
constant-RPS load (:mod:`repro.loadgen`).
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from repro.analysis.bounds import lower_bound
from repro.analysis.tables import format_table
from repro.api.registry import (
    default_policy_for,
    get_policy,
    list_policies,
    policy_names,
)
from repro.api.scenario import FAILURE_MODELS, SCENARIO_SHAPES, Scenario, SimConfig
from repro.api.service import evaluate_grid, simulate
from repro.instance import load_instance, save_instance
from repro.kernels import KERNELS
from repro.sim.engine import run_policy
from repro.sim.trace import TracingPolicy, render_gantt


def __getattr__(name: str):
    if name == "POLICIES":
        # The PR-1 deprecation shim is gone; the registry is the only
        # source of truth.  (Raising AttributeError makes `from
        # repro.__main__ import POLICIES` fail with an ImportError too.)
        raise AttributeError(
            "repro.__main__.POLICIES was removed: the policy table lives in "
            "repro.api.registry — use repro.api.get_policy(name) / "
            "repro.api.list_policies()"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _scenario_from_args(args) -> Scenario:
    return Scenario(
        shape=args.shape,
        n_jobs=args.jobs,
        n_machines=args.machines,
        model=args.model,
        seed=args.seed,
        edge_prob=args.edge_prob,
    )


def _cmd_generate(args) -> int:
    inst = _scenario_from_args(args).to_instance()
    save_instance(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


def _default_policy_for(inst) -> str:
    """Deprecated alias for :func:`repro.api.registry.default_policy_for`."""
    warnings.warn(
        "repro.__main__._default_policy_for moved to "
        "repro.api.default_policy_for",
        DeprecationWarning,
        stacklevel=2,
    )
    return default_policy_for(inst)


def _cmd_run(args) -> int:
    inst = load_instance(args.instance)
    name = args.policy or default_policy_for(inst)
    report = simulate(
        inst,
        name,
        SimConfig(n_trials=args.trials, seed=args.seed, max_steps=args.max_steps,
                  discipline=args.discipline, kernel=args.kernel,
                  kernel_threads=args.kernel_threads),
        backend=args.backend,
        n_workers=args.workers,
    )
    lo, hi = report.stats.ci95
    print(f"instance: {inst}")
    print(f"policy:   {report.policy}")
    if report.kernel is not None:
        threads = report.kernel.get("threads", 1)
        if report.kernel["active"] != "numpy" or threads > 1:
            suffix = f" (threads={threads})" if threads > 1 else ""
            print(f"kernel:   {report.kernel['active']}{suffix}")
    print(f"E[T] = {report.mean:.3f} steps   95% CI [{lo:.3f}, {hi:.3f}] "
          f"({args.trials} trials)")
    print(f"lower bound = {report.lower_bound:.3f}   "
          f"measured ratio <= {report.ratio:.3f}")
    return 0


def _cmd_gantt(args) -> int:
    inst = load_instance(args.instance)
    name = args.policy or default_policy_for(inst)
    traced = TracingPolicy(get_policy(name)())
    result = run_policy(inst, traced, rng=args.seed, max_steps=args.max_steps)
    print(f"{inst}  policy={name}  makespan={result.makespan}")
    print(render_gantt(traced.trace, max_width=args.width,
                       completion_times=result.completion_times))
    return 0


def _cmd_bound(args) -> int:
    inst = load_instance(args.instance)
    print(f"instance: {inst}")
    print(f"lower bound on E[T_OPT]: {lower_bound(inst):.4f}")
    return 0


def _cmd_policies(args) -> int:
    rows = [
        [
            info.name,
            ", ".join(info.aliases) or "-",
            ", ".join(info.default_for) or "-",
            info.dispatch_detail if info.batch_dispatch != "fallback" else "-",
            info.cls.__name__,
            info.summary,
        ]
        for info in list_policies()
    ]
    print(format_table(
        ["name", "aliases", "default for", "batched", "class", "summary"],
        rows,
        title="registered policies",
    ))
    return 0


def _cmd_sweep(args) -> int:
    from repro.api.scenario import ScenarioGrid

    grid = ScenarioGrid(
        Scenario(model=args.model[0], edge_prob=args.edge_prob),
        shape=args.shape or ["independent"],
        n_jobs=args.jobs or [20],
        n_machines=args.machines or [5],
        model=args.model,
        seed=args.seed_instance,
    )
    config = SimConfig(n_trials=args.trials, seed=args.seed,
                       max_steps=args.max_steps, discipline=args.discipline,
                       kernel=args.kernel, kernel_threads=args.kernel_threads)
    reports = evaluate_grid(
        grid,
        args.policy or ("auto",),
        config=config,
        backend=args.backend,
        n_workers=args.workers,
    )
    rows = []
    for r in reports:
        lo, hi = r.stats.ci95
        s = r.scenario
        rows.append([
            s.shape, s.n_jobs, s.n_machines, s.model, s.seed, r.policy,
            f"{r.mean:.2f}", f"[{lo:.2f}, {hi:.2f}]",
            f"{r.lower_bound:.2f}", f"{r.ratio:.3f}",
        ])
    print(format_table(
        ["shape", "n", "m", "model", "inst seed", "policy", "E[T]",
         "95% CI", "LB", "ratio"],
        rows,
        title=f"sweep: {len(reports)} reports, {args.trials} trials each "
              f"({args.backend} backend)",
    ))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {len(reports)} reports to {args.json}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import os
    import signal

    from repro.kernels import KERNEL_ENV_VAR, KERNEL_THREADS_ENV_VAR
    from repro.server import SchedulingServer, make_executor

    if args.kernel is not None:
        # The serve knob is process-wide: exporting it makes the serial
        # executor, request-time resolution, and /healthz all agree, and
        # warm-pool workers get it explicitly through the initializer.
        os.environ[KERNEL_ENV_VAR] = args.kernel
    if args.kernel_threads is not None:
        # Same process-wide story for the trial-parallel worker count.
        os.environ[KERNEL_THREADS_ENV_VAR] = str(args.kernel_threads)
    executor = make_executor(args.executor, args.workers,
                             solve_cache_entries=args.solve_cache,
                             kernel=args.kernel,
                             kernel_threads=args.kernel_threads)

    async def _main() -> None:
        server = SchedulingServer(
            executor, host=args.host, port=args.port,
            max_handlers=args.max_handlers, drain_timeout=args.drain_timeout,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        print(f"serving on http://{server.host}:{server.port} "
              f"(executor={executor.kind}, workers={args.workers or 'auto'})",
              flush=True)
        await stop.wait()
        print("shutting down (draining in-flight requests)", flush=True)
        await server.stop()

    with executor:
        if args.prewarm and hasattr(executor, "prewarm"):
            executor.prewarm()
        asyncio.run(_main())
    return 0


def _cmd_loadgen(args) -> int:
    from repro.loadgen import (
        RequestSpec,
        default_simulate_spec,
        format_report,
        run_load,
    )

    if args.body:
        with open(args.body) as fh:
            spec = RequestSpec.json(args.method, args.path, json.load(fh))
    elif args.method.upper() == "GET":
        spec = RequestSpec(method="GET", path=args.path)
    else:
        spec = default_simulate_spec(n_jobs=args.jobs, n_machines=args.machines,
                                     n_trials=args.trials)
    report = run_load(args.url, spec, rps=args.rps, duration=args.duration,
                      timeout=args.timeout)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote load report to {args.json}")
    failures = []
    if args.assert_p99 is not None and report.histogram.p99 > args.assert_p99:
        failures.append(
            f"p99 {report.histogram.p99:.3f}s exceeds --assert-p99 "
            f"{args.assert_p99:.3f}s"
        )
    if args.assert_error_rate is not None and (
        report.error_rate > args.assert_error_rate
    ):
        failures.append(
            f"error rate {report.error_rate:.1%} exceeds --assert-error-rate "
            f"{args.assert_error_rate:.1%}"
        )
    if report.completed == 0:
        failures.append("no requests completed")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_suite_run(args) -> int:
    from repro.suite import SuiteError, SuiteRunner, load_suite

    try:
        spec = load_suite(args.suite)
        runner = SuiteRunner(spec, args.out, jobs=args.jobs, force=args.force)
        outcome = runner.run(progress=None if args.quiet else print)
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"suite {spec.name}: executed={outcome.executed} "
          f"cached={outcome.cached} "
          f"report={args.out}/report.json")
    return 0


def _cmd_suite_status(args) -> int:
    from repro.suite import SuiteError, SuiteRunner, load_suite

    try:
        spec = load_suite(args.suite)
        rows = SuiteRunner(spec, args.out).status()
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    done = sum(1 for _, _, present in rows if present)
    for digest, label, present in rows:
        print(f"[{digest[:12]}] {'done   ' if present else 'pending'} {label}")
    print(f"suite {spec.name}: {done}/{len(rows)} cells done")
    return 0


def _forward_experiments(rest) -> int:
    # Forward to the experiment harness (`python -m repro.experiments`),
    # so `repro experiments E-PERJOB` works from the installed entry point.
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(list(rest))


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `experiments` forwards wholesale before argparse sees the rest:
    # REMAINDER cannot capture a leading option, so `repro experiments
    # --help` / `--markdown out.md` must bypass the top-level parser.
    if argv[:1] == ["experiments"]:
        return _forward_experiments(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiprocessor scheduling under uncertainty (SPAA 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    all_policy_names = policy_names(include_aliases=True)

    g = sub.add_parser("generate", help="generate a random instance")
    g.add_argument("--shape", choices=SCENARIO_SHAPES, default="independent")
    g.add_argument("--jobs", type=int, default=20)
    g.add_argument("--machines", type=int, default=5)
    g.add_argument("--model", choices=FAILURE_MODELS, default="specialist")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--edge-prob", type=float, default=0.1,
                   help="forward-edge probability (random_dag only)")
    g.add_argument("--out", required=True)
    g.set_defaults(func=_cmd_generate)

    r = sub.add_parser("run", help="estimate a policy's expected makespan")
    r.add_argument("instance")
    r.add_argument("--policy", choices=all_policy_names, default=None,
                   help="default: matched to the precedence class")
    r.add_argument("--trials", type=int, default=30)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--max-steps", type=int, default=1_000_000)
    r.add_argument("--backend", choices=["serial", "process"], default="serial")
    r.add_argument("--workers", type=int, default=None)
    r.add_argument("--discipline", choices=["v1", "v2"], default=None,
                   help="RNG discipline (default: $REPRO_DISCIPLINE or v1; "
                        "v2 = batch-native draws, statistically equivalent)")
    r.add_argument("--kernel", choices=KERNELS, default=None,
                   help="hot-loop kernel backend (default: $REPRO_KERNEL or "
                        "numpy; numba = JIT-compiled, bit-identical samples)")
    r.add_argument("--kernel-threads", type=int, default=None,
                   help="trial-parallel workers per batch (default: "
                        "$REPRO_KERNEL_THREADS or 1; bit-identical samples)")
    r.set_defaults(func=_cmd_run)

    ga = sub.add_parser("gantt", help="render one execution as ASCII")
    ga.add_argument("instance")
    ga.add_argument("--policy", choices=all_policy_names, default=None)
    ga.add_argument("--seed", type=int, default=0)
    ga.add_argument("--width", type=int, default=100)
    ga.add_argument("--max-steps", type=int, default=1_000_000)
    ga.set_defaults(func=_cmd_gantt)

    b = sub.add_parser("bound", help="print the provable lower bound")
    b.add_argument("instance")
    b.set_defaults(func=_cmd_bound)

    p = sub.add_parser("policies", help="list the policy registry")
    p.set_defaults(func=_cmd_policies)

    s = sub.add_parser("sweep", help="evaluate policies across a scenario grid")
    s.add_argument("--shape", action="append", choices=SCENARIO_SHAPES,
                   help="repeatable; default: independent")
    s.add_argument("--jobs", action="append", type=int,
                   help="repeatable; default: 20")
    s.add_argument("--machines", action="append", type=int,
                   help="repeatable; default: 5")
    s.add_argument("--model", action="append", choices=FAILURE_MODELS,
                   default=None, help="repeatable; default: specialist")
    s.add_argument("--policy", action="append", metavar="NAME",
                   help="repeatable registry name, or 'auto' (default)")
    s.add_argument("--seed-instance", action="append", type=int,
                   default=None, help="repeatable instance seed; default: 0")
    s.add_argument("--trials", type=int, default=20)
    s.add_argument("--seed", type=int, default=0, help="trial RNG seed")
    s.add_argument("--max-steps", type=int, default=1_000_000)
    s.add_argument("--edge-prob", type=float, default=0.1)
    s.add_argument("--backend", choices=["serial", "process"], default="serial")
    s.add_argument("--workers", type=int, default=None)
    s.add_argument("--discipline", choices=["v1", "v2"], default=None,
                   help="RNG discipline (default: $REPRO_DISCIPLINE or v1)")
    s.add_argument("--kernel", choices=KERNELS, default=None,
                   help="hot-loop kernel backend (default: $REPRO_KERNEL or "
                        "numpy)")
    s.add_argument("--kernel-threads", type=int, default=None,
                   help="trial-parallel workers per batch (default: "
                        "$REPRO_KERNEL_THREADS or 1)")
    s.add_argument("--json", default=None, help="also dump reports to this file")
    s.set_defaults(func=_cmd_sweep)

    from repro.server.executors import EXECUTOR_KINDS

    sv = sub.add_parser(
        "serve",
        help="run the persistent scheduling service (POST /simulate, "
             "POST /grid, GET /policies, GET /healthz)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8075,
                    help="bind port (0 picks a free one; default 8075)")
    sv.add_argument("--executor", choices=EXECUTOR_KINDS, default="warm-pool",
                    help="request executor: 'serial' runs trials in-process, "
                         "'warm-pool' keeps a long-lived solve-cache-warm "
                         "worker pool across requests (default)")
    sv.add_argument("--workers", type=int, default=None,
                    help="warm-pool width (default: CPU count)")
    sv.add_argument("--solve-cache", type=int, default=4096,
                    help="per-worker solve-cache entries (default 4096)")
    sv.add_argument("--max-handlers", type=int, default=8,
                    help="max concurrently executing requests (default 8)")
    sv.add_argument("--drain-timeout", type=float, default=10.0,
                    help="seconds to wait for in-flight requests at shutdown")
    sv.add_argument("--kernel", choices=KERNELS, default=None,
                    help="hot-loop kernel backend for the whole service "
                         "(default: $REPRO_KERNEL or numpy); warm-pool "
                         "workers pre-compile it at pool start-up")
    sv.add_argument("--kernel-threads", type=int, default=None,
                    help="trial-parallel workers per batch, service-wide "
                         "(default: $REPRO_KERNEL_THREADS or 1)")
    sv.add_argument("--no-prewarm", dest="prewarm", action="store_false",
                    help="skip building the worker pool before accepting "
                         "traffic (first request then pays the spawn cost)")
    sv.set_defaults(func=_cmd_serve)

    lg = sub.add_parser(
        "loadgen",
        help="drive the service with wrk2-style open-loop constant-RPS load "
             "and report p50/p90/p99/max latency",
    )
    lg.add_argument("--url", default="http://127.0.0.1:8075",
                    help="server address (default http://127.0.0.1:8075)")
    lg.add_argument("--rps", type=float, default=10.0,
                    help="constant offered request rate (default 10)")
    lg.add_argument("--duration", type=float, default=5.0,
                    help="run length in seconds (default 5)")
    lg.add_argument("--timeout", type=float, default=30.0,
                    help="per-request timeout in seconds")
    lg.add_argument("--method", default="POST",
                    help="HTTP method of the generated requests")
    lg.add_argument("--path", default="/simulate",
                    help="request path (default /simulate)")
    lg.add_argument("--body", default=None, metavar="FILE",
                    help="JSON file to send as the request body (default: a "
                         "small built-in /simulate scenario)")
    lg.add_argument("--jobs", type=int, default=12,
                    help="built-in scenario size (ignored with --body)")
    lg.add_argument("--machines", type=int, default=4)
    lg.add_argument("--trials", type=int, default=24,
                    help="built-in scenario trials per request")
    lg.add_argument("--json", default=None,
                    help="also dump the load report to this file")
    lg.add_argument("--assert-p99", type=float, default=None, metavar="SECONDS",
                    help="exit 1 when p99 latency exceeds this bound")
    lg.add_argument("--assert-error-rate", type=float, default=None,
                    metavar="FRACTION",
                    help="exit 1 when the error rate exceeds this fraction "
                         "(use 0 for zero-error runs)")
    lg.set_defaults(func=_cmd_loadgen)

    su = sub.add_parser(
        "suite",
        help="run a declarative suite file (content-addressed cells: "
             "re-runs compute only the delta, resume is free)",
    )
    su_sub = su.add_subparsers(dest="suite_command", required=True)
    sr = su_sub.add_parser("run", help="execute a suite's missing cells")
    sr.add_argument("suite", help="suite file (.json; .toml on Python 3.11+)")
    sr.add_argument("--out", required=True,
                    help="output directory (cells/ artifacts + report)")
    sr.add_argument("--jobs", type=int, default=1,
                    help="worker processes for trial shards (default 1: "
                         "serial in-process)")
    sr.add_argument("--force", action="store_true",
                    help="re-execute every cell, ignoring stored artifacts")
    sr.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")
    sr.set_defaults(func=_cmd_suite_run)
    ss = su_sub.add_parser("status", help="show which cells are done")
    ss.add_argument("suite")
    ss.add_argument("--out", required=True)
    ss.set_defaults(func=_cmd_suite_status)

    # Listed here so `repro --help` shows it; actual dispatch happens in
    # the pre-parse forward above (never through this parser).
    e = sub.add_parser(
        "experiments",
        help="run the paper-reproduction experiment tables "
             "(forwards to python -m repro.experiments)",
    )
    e.add_argument("rest", nargs=argparse.REMAINDER)
    e.set_defaults(func=lambda args: _forward_experiments(args.rest))

    args = parser.parse_args(argv)
    if args.command == "sweep":
        args.model = args.model or ["specialist"]
        args.seed_instance = args.seed_instance or [0]
        bad = [n for n in (args.policy or []) if n != "auto"
               and n not in all_policy_names]
        if bad:
            parser.error(f"unknown policies {bad}; see 'repro policies'")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
